//! Historical speed statistics per road segment and time slot.
//!
//! The Con-Index is built from "the minimum speed (removing the 0 speed)" and
//! "the maximum traveling speed calculated from the historical trajectories"
//! (Section 3.2.2). This module aggregates, for every (segment, Δt slot)
//! pair, the minimum and maximum traversal speed observed in the map-matched
//! trajectory dataset, with per-class per-slot fallbacks for pairs that were
//! never observed.

use bytes::{Buf, BufMut};
use streach_roadnet::{RoadClass, RoadNetwork, SegmentId};
use streach_traj::TrajectoryDataset;

use crate::time::slot_of;

/// Traversal speeds slower than this are treated as "0 speed" (standing
/// traffic / data noise) and excluded, as the paper does.
const MIN_PLAUSIBLE_SPEED_MS: f64 = 0.5;
/// Traversal speeds faster than this are discarded as matching noise.
const MAX_PLAUSIBLE_SPEED_MS: f64 = 45.0;
/// Congestion margin applied to per-cell minimum speeds when building the
/// Near lists (see [`SpeedStats::min_speed_ms`]).
const MIN_SPEED_MARGIN: f64 = 0.5;

#[derive(Debug, Clone, Copy)]
struct MinMax {
    min: f32,
    max: f32,
}

impl MinMax {
    const EMPTY: MinMax = MinMax {
        min: f32::INFINITY,
        max: f32::NEG_INFINITY,
    };

    fn observe(&mut self, v: f64) {
        let v = v as f32;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn is_empty(&self) -> bool {
        self.min > self.max
    }
}

/// Minimum and maximum observed traversal speed for every
/// (road segment, time slot) pair.
///
/// `Clone` supports the copy-on-write update path of streaming ingest: the
/// Con-Index keeps the stats behind an `Arc` and clones only when an update
/// races with a reader holding the previous version.
#[derive(Clone)]
pub struct SpeedStats {
    slot_s: u32,
    slots_per_day: u32,
    num_segments: usize,
    /// `per_segment[slot * num_segments + segment]`
    per_segment: Vec<MinMax>,
    /// Fallback per (slot, class) aggregates.
    per_class: Vec<[MinMax; 4]>,
    /// Number of speed observations ingested.
    observations: u64,
}

fn class_index(class: RoadClass) -> usize {
    match class {
        RoadClass::Highway => 0,
        RoadClass::Primary => 1,
        RoadClass::Secondary => 2,
        RoadClass::Local => 3,
    }
}

impl SpeedStats {
    /// Computes the statistics from a map-matched dataset.
    ///
    /// A trajectory's traversal speed over a segment is its length divided by
    /// the time between entering it and entering the next segment; the last
    /// visit of every trajectory has no exit time and is skipped.
    pub fn from_dataset(network: &RoadNetwork, dataset: &TrajectoryDataset, slot_s: u32) -> Self {
        assert!(slot_s > 0, "slot length must be positive");
        let slots_per_day = streach_traj::SECONDS_PER_DAY.div_ceil(slot_s);
        let num_segments = network.num_segments();
        let mut stats = Self {
            slot_s,
            slots_per_day,
            num_segments,
            per_segment: vec![MinMax::EMPTY; slots_per_day as usize * num_segments],
            per_class: vec![[MinMax::EMPTY; 4]; slots_per_day as usize],
            observations: 0,
        };
        for traj in dataset.trajectories() {
            for w in traj.visits.windows(2) {
                stats.observe_pair(network, w[0].segment, w[0].enter_time_s, w[1].enter_time_s);
            }
        }
        stats
    }

    /// Ingests one consecutive-visit pair: the trajectory entered `segment`
    /// at `enter_time_s` and entered the *next* segment at
    /// `next_enter_time_s`. Returns `true` when the pair produced a valid
    /// speed observation (implausibly slow/fast traversals and zero-length
    /// intervals are discarded, as in the batch build).
    ///
    /// This is the single observation path shared by the batch construction
    /// ([`SpeedStats::from_dataset`]) and the streaming ingest, so an engine
    /// that ingested a trajectory point by point holds **bit-identical**
    /// statistics to one rebuilt from scratch on the combined dataset.
    pub fn observe_pair(
        &mut self,
        network: &RoadNetwork,
        segment: SegmentId,
        enter_time_s: u32,
        next_enter_time_s: u32,
    ) -> bool {
        let seg = network.segment(segment);
        let dt = next_enter_time_s.saturating_sub(enter_time_s);
        if dt == 0 {
            return false;
        }
        let speed = seg.length_m / dt as f64;
        if !(MIN_PLAUSIBLE_SPEED_MS..=MAX_PLAUSIBLE_SPEED_MS).contains(&speed) {
            return false;
        }
        let slot = slot_of(enter_time_s, self.slot_s);
        self.observe(segment, seg.class, slot, speed);
        true
    }

    fn observe(&mut self, segment: SegmentId, class: RoadClass, slot: u32, speed: f64) {
        let idx = slot as usize * self.num_segments + segment.index();
        self.per_segment[idx].observe(speed);
        self.per_class[slot as usize][class_index(class)].observe(speed);
        self.observations += 1;
    }

    /// The Δt granularity the statistics were aggregated at.
    pub fn slot_s(&self) -> u32 {
        self.slot_s
    }

    /// Number of (segment, slot, trajectory) speed observations ingested.
    pub fn num_observations(&self) -> u64 {
        self.observations
    }

    /// Fraction of (segment, slot) cells with at least one observation.
    pub fn coverage(&self) -> f64 {
        let filled = self.per_segment.iter().filter(|m| !m.is_empty()).count();
        filled as f64 / self.per_segment.len() as f64
    }

    fn cell(&self, segment: SegmentId, slot: u32) -> &MinMax {
        let slot = slot % self.slots_per_day;
        &self.per_segment[slot as usize * self.num_segments + segment.index()]
    }

    /// Maximum observed speed (m/s) on `segment` during `slot`, falling back
    /// to the per-class slot aggregate and finally to the class free-flow
    /// speed when nothing was observed.
    pub fn max_speed_ms(&self, network: &RoadNetwork, segment: SegmentId, slot: u32) -> f64 {
        let cell = self.cell(segment, slot);
        if !cell.is_empty() {
            return cell.max as f64;
        }
        let class = network.segment(segment).class;
        let class_cell = &self.per_class[(slot % self.slots_per_day) as usize][class_index(class)];
        if !class_cell.is_empty() {
            return class_cell.max as f64;
        }
        class.free_flow_ms()
    }

    /// Conservative minimum speed (m/s) on `segment` during `slot`, used to
    /// build the Near lists (the lower bound of the reachable range).
    ///
    /// The value is the minimum observed traversal speed, shrunk by a
    /// congestion margin ([`MIN_SPEED_MARGIN`]): a single segment usually has
    /// only a handful of traversals per Δt slot, so its sample minimum tends
    /// to sit near the typical speed rather than the worst-case congested
    /// speed the paper's 400-million-point dataset captures. `fallback_min`
    /// bounds the value from below so Near lists never collapse to the start
    /// segment alone, and the result never exceeds the observed maximum for
    /// the same cell.
    pub fn min_speed_ms(
        &self,
        network: &RoadNetwork,
        segment: SegmentId,
        slot: u32,
        fallback_min: f64,
    ) -> f64 {
        let class = network.segment(segment).class;
        let class_cell = &self.per_class[(slot % self.slots_per_day) as usize][class_index(class)];
        let cell = self.cell(segment, slot);
        let (observed_min, cap) = if !cell.is_empty() {
            (cell.min as f64, cell.max as f64)
        } else if !class_cell.is_empty() {
            (class_cell.min as f64, class_cell.max as f64)
        } else {
            (class.free_flow_ms() * 0.3, class.free_flow_ms())
        };
        (observed_min * MIN_SPEED_MARGIN).max(fallback_min).min(cap)
    }

    /// Serializes the statistics for an engine snapshot.
    ///
    /// Layout: `slot_s`, `slots_per_day`, `num_segments` and `observations`
    /// header, then the dense per-(slot, segment) min/max table and the
    /// per-(slot, class) fallback table as IEEE-754 `f32` bit patterns.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut buf =
            Vec::with_capacity(32 + self.per_segment.len() * 8 + self.per_class.len() * 32);
        buf.put_u32_le(self.slot_s);
        buf.put_u32_le(self.slots_per_day);
        buf.put_u64_le(self.num_segments as u64);
        buf.put_u64_le(self.observations);
        buf.put_u64_le(self.per_segment.len() as u64);
        for cell in &self.per_segment {
            buf.put_u32_le(cell.min.to_bits());
            buf.put_u32_le(cell.max.to_bits());
        }
        buf.put_u64_le(self.per_class.len() as u64);
        for classes in &self.per_class {
            for cell in classes {
                buf.put_u32_le(cell.min.to_bits());
                buf.put_u32_le(cell.max.to_bits());
            }
        }
        buf
    }

    /// Deserializes statistics previously produced by [`SpeedStats::encode`].
    /// Returns `None` when the buffer is malformed or internally
    /// inconsistent.
    pub(crate) fn decode(mut buf: &[u8]) -> Option<Self> {
        if buf.remaining() < 32 {
            return None;
        }
        let slot_s = buf.get_u32_le();
        let slots_per_day = buf.get_u32_le();
        let num_segments_u64 = buf.get_u64_le();
        let observations = buf.get_u64_le();
        if slot_s == 0 || slots_per_day != streach_traj::SECONDS_PER_DAY.div_ceil(slot_s) {
            return None;
        }
        // All lengths are file-supplied: validate with overflow-checked
        // arithmetic against the actual buffer size before any allocation.
        let per_segment_len = buf.get_u64_le();
        let expected_len = (slots_per_day as u64).checked_mul(num_segments_u64)?;
        if per_segment_len != expected_len
            || per_segment_len > (buf.remaining() as u64).saturating_sub(8) / 8
        {
            return None;
        }
        let num_segments = num_segments_u64 as usize;
        let per_segment_len = per_segment_len as usize;
        let mut per_segment = Vec::with_capacity(per_segment_len);
        for _ in 0..per_segment_len {
            per_segment.push(MinMax {
                min: f32::from_bits(buf.get_u32_le()),
                max: f32::from_bits(buf.get_u32_le()),
            });
        }
        let per_class_len = buf.get_u64_le() as usize;
        if per_class_len != slots_per_day as usize || buf.remaining() != per_class_len * 32 {
            return None;
        }
        let mut per_class = Vec::with_capacity(per_class_len);
        for _ in 0..per_class_len {
            let mut classes = [MinMax::EMPTY; 4];
            for cell in &mut classes {
                *cell = MinMax {
                    min: f32::from_bits(buf.get_u32_le()),
                    max: f32::from_bits(buf.get_u32_le()),
                };
            }
            per_class.push(classes);
        }
        Some(Self {
            slot_s,
            slots_per_day,
            num_segments,
            per_segment,
            per_class,
            observations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::FleetConfig;

    fn setup() -> (SyntheticCity, TrajectoryDataset) {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let dataset = TrajectoryDataset::simulate(&city.network, FleetConfig::tiny());
        (city, dataset)
    }

    #[test]
    fn observations_are_ingested() {
        let (city, dataset) = setup();
        let stats = SpeedStats::from_dataset(&city.network, &dataset, 300);
        assert!(
            stats.num_observations() > 100,
            "observations {}",
            stats.num_observations()
        );
        assert!(stats.coverage() > 0.0);
        assert_eq!(stats.slot_s(), 300);
    }

    #[test]
    fn min_never_exceeds_max() {
        let (city, dataset) = setup();
        let stats = SpeedStats::from_dataset(&city.network, &dataset, 300);
        for seg in city.network.segment_ids() {
            for slot in (0..288).step_by(17) {
                let min = stats.min_speed_ms(&city.network, seg, slot, 1.0);
                let max = stats.max_speed_ms(&city.network, seg, slot);
                assert!(
                    min <= max + 1e-9,
                    "min {min} > max {max} for {seg} slot {slot}"
                );
                assert!(min > 0.0);
                assert!(max <= 45.0 + 1e-9);
            }
        }
    }

    #[test]
    fn fallbacks_apply_when_no_data() {
        let (city, _) = setup();
        // An empty dataset: everything must fall back to class defaults.
        let empty = TrajectoryDataset::from_matched(Vec::new(), 0, 0);
        let stats = SpeedStats::from_dataset(&city.network, &empty, 300);
        assert_eq!(stats.num_observations(), 0);
        let seg = city.network.segment_ids().next().unwrap();
        let class = city.network.segment(seg).class;
        assert_eq!(
            stats.max_speed_ms(&city.network, seg, 10),
            class.free_flow_ms()
        );
        assert!(stats.min_speed_ms(&city.network, seg, 10, 2.0) >= 2.0);
    }

    #[test]
    fn rush_hour_max_speed_lower_than_night() {
        let (city, _) = setup();
        // A fleet operating around the clock so both slots are covered.
        let dataset = TrajectoryDataset::simulate(
            &city.network,
            FleetConfig {
                num_taxis: 20,
                num_days: 3,
                day_start_s: 0,
                day_end_s: 86_400,
                seed: 5,
                ..FleetConfig::default()
            },
        );
        let stats = SpeedStats::from_dataset(&city.network, &dataset, 1800);
        // Compare the class-level aggregates at 03:00 vs 07:30-08:00.
        let night_slot = slot_of(3 * 3600, 1800);
        let rush_slot = slot_of(7 * 3600 + 1800, 1800);
        let mut rush_sum = 0.0;
        let mut night_sum = 0.0;
        let mut n = 0.0;
        for seg in city.network.segment_ids() {
            rush_sum += stats.max_speed_ms(&city.network, seg, rush_slot);
            night_sum += stats.max_speed_ms(&city.network, seg, night_slot);
            n += 1.0;
        }
        assert!(
            night_sum / n > rush_sum / n * 1.1,
            "night avg max {} vs rush avg max {}",
            night_sum / n,
            rush_sum / n
        );
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_exact() {
        let (city, dataset) = setup();
        let stats = SpeedStats::from_dataset(&city.network, &dataset, 300);
        let decoded = SpeedStats::decode(&stats.encode()).expect("round trip");
        assert_eq!(decoded.slot_s(), stats.slot_s());
        assert_eq!(decoded.num_observations(), stats.num_observations());
        for seg in city.network.segment_ids().step_by(7) {
            for slot in (0..288).step_by(13) {
                assert_eq!(
                    decoded.max_speed_ms(&city.network, seg, slot).to_bits(),
                    stats.max_speed_ms(&city.network, seg, slot).to_bits(),
                );
                assert_eq!(
                    decoded
                        .min_speed_ms(&city.network, seg, slot, 1.5)
                        .to_bits(),
                    stats.min_speed_ms(&city.network, seg, slot, 1.5).to_bits(),
                );
            }
        }
        // Truncated buffers are rejected, not misread.
        let bytes = stats.encode();
        assert!(SpeedStats::decode(&bytes[..bytes.len() - 3]).is_none());
        assert!(SpeedStats::decode(&[]).is_none());
    }

    #[test]
    fn slots_wrap_around_day() {
        let (city, dataset) = setup();
        let stats = SpeedStats::from_dataset(&city.network, &dataset, 300);
        let seg = city.network.segment_ids().next().unwrap();
        let a = stats.max_speed_ms(&city.network, seg, 5);
        let b = stats.max_speed_ms(&city.network, seg, 5 + 288);
        assert_eq!(a, b);
    }
}
