//! Continuous reachability subscriptions: standing s-queries evaluated
//! **incrementally** against the ingest stream.
//!
//! A one-shot query answers "what is reachable now"; a subscription keeps
//! that answer current as trajectory batches land. The machinery is the
//! serving stack's invalidation signal turned into a *re-evaluation*
//! signal: every applied ingest batch reports an
//! [`IngestTouch`] (touched posting pairs, moved speed slots, day-count
//! raise), and every subscription records the **read footprint** of its
//! last answer — the same wrapped slot set + maximum bounding region the
//! result cache stores ([`crate::serve`]). A batch whose touch does not
//! intersect a subscription's footprint provably cannot have changed that
//! subscription's answer, so the background worker re-runs **only the
//! affected subscriptions**:
//!
//! * a touched (slot, segment) posting pair affects a subscription when
//!   the slot is in its read window *and* the segment lies inside its
//!   maximum bounding region (verification never reads outside it),
//! * a moved speed slot in the read window always affects it (speed
//!   statistics feed the bounding expansion, which may reach any segment
//!   on re-run),
//! * a raised day count affects **everything** — it is every reachability
//!   probability's denominator,
//! * and a batch touching nothing a subscription read triggers **zero
//!   engine queries** for it (observable via
//!   [`SubscribeStats::engine_queries`]).
//!
//! Re-evaluation is bit-identical to re-running every subscription from
//! scratch after every batch (`tests/subscription_equivalence.rs` pins
//! this): affected SQMB subscriptions are batched through the existing
//! [`ServeBackend::try_s_query_coalesced`] group pass — co-located
//! subscriptions share one bounding — and ES subscriptions run serially.
//!
//! The worker follows the [`crate::maintenance::MaintenanceController`]
//! pattern: a dedicated thread woken by ingest observers (the observer
//! callback runs under the engine's ingest lock and only enqueues the
//! touch + kicks the worker — it never queries), a deterministic
//! [`SubscriptionManager::run_now`] for tests, typed [`SubscribeError`]s,
//! and clean shutdown on drop. Changed answers are delivered as
//! [`ReachabilityEvent`]s (old region, new region, fired trigger,
//! generation stamp) through a **bounded** event queue: on overflow the
//! oldest event is dropped and the next drain leads with a typed
//! [`SubscriptionEvent::Lagged`] carrying the miss count. A storage fault
//! during re-evaluation surfaces as a typed
//! [`SubscriptionEvent::EvaluationFailed`]; the subscription stays
//! registered and marked dirty, so the next batch (or `run_now`)
//! converges it.
//!
//! Both backends work: a single [`crate::ReachabilityEngine`] or a
//! [`crate::ShardedEngine`] — the sharded router registers the observer on
//! every shard leader and merges the per-shard touches into one queue, so
//! cross-shard subscriptions wake exactly when a shard they read from
//! changed. [`crate::serve::QueryServer`] fronts the manager with
//! `subscribe`/`unsubscribe`, serving one-shot and standing traffic from
//! the same process.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::ingest::{IngestObserver, IngestTouch};
use crate::query::{Algorithm, QueryError, SQuery};
use crate::region::ReachableRegion;
use crate::serve::{ReadFootprint, ServeBackend};

/// Identifier of one registered subscription, unique within its manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(pub u64);

impl std::fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "subscription #{}", self.0)
    }
}

/// When a subscription's re-evaluation should raise `trigger_fired`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire whenever the reachable region changed at all (segment set or
    /// total length).
    AnyRegionChange,
    /// Fire when the region's total length **crosses below** the threshold
    /// (previous answer at or above it, new answer below): "alert when the
    /// reachable area around the depot collapses". Fires exactly at the
    /// crossing batch, not on every batch while below.
    LengthBelowKm(f64),
}

impl Trigger {
    /// Whether the transition `old -> new` fires this trigger. The initial
    /// evaluation (`old` is `None`) never fires — there is no transition.
    fn fired(&self, old: Option<&ReachableRegion>, new: &ReachableRegion) -> bool {
        match (self, old) {
            (_, None) => false,
            (Trigger::AnyRegionChange, Some(old)) => old != new,
            (Trigger::LengthBelowKm(threshold), Some(old)) => {
                old.total_length_km >= *threshold && new.total_length_km < *threshold
            }
        }
    }
}

/// A changed (or first) answer of one subscription.
#[derive(Debug, Clone)]
pub struct ReachabilityEvent {
    /// The subscription this event belongs to.
    pub id: SubscriptionId,
    /// The previous answer; `None` on the registration evaluation.
    pub old_region: Option<ReachableRegion>,
    /// The current answer.
    pub new_region: ReachableRegion,
    /// Whether the subscription's [`Trigger`] fired on this transition.
    pub trigger_fired: bool,
    /// Ingest generation stamp: the number of ingest touches the manager
    /// had observed when this answer was computed. Monotonic per manager.
    pub generation: u64,
}

/// Everything a subscription consumer can receive.
#[derive(Debug, Clone)]
pub enum SubscriptionEvent {
    /// A subscription's answer changed (or was computed for the first
    /// time); `trigger_fired` tells whether its trigger condition fired.
    Update(ReachabilityEvent),
    /// Re-evaluating a subscription failed (typically
    /// [`QueryError::Storage`], a disk fault mid-verification). The
    /// subscription stays registered and dirty; the next batch or
    /// [`SubscriptionManager::run_now`] retries it.
    EvaluationFailed {
        /// The subscription whose evaluation failed.
        id: SubscriptionId,
        /// The typed failure.
        error: QueryError,
        /// Ingest generation stamp of the failed pass.
        generation: u64,
    },
    /// The bounded event queue overflowed since the last drain: `missed`
    /// events were dropped (oldest first). Consumers that must not miss a
    /// transition should re-read current answers via
    /// [`SubscriptionManager::last_region`].
    Lagged {
        /// Number of events dropped.
        missed: u64,
    },
}

/// A typed subscription-layer failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SubscribeError {
    /// Registration failed: the standing query is invalid, off-network, or
    /// its initial evaluation hit a storage fault. Nothing was registered.
    Query(QueryError),
    /// The named subscription is not registered (already unsubscribed, or
    /// never existed).
    UnknownSubscription(SubscriptionId),
}

impl std::fmt::Display for SubscribeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubscribeError::Query(e) => write!(f, "subscription rejected: {e}"),
            SubscribeError::UnknownSubscription(id) => write!(f, "{id} is not registered"),
        }
    }
}

impl std::error::Error for SubscribeError {}

impl From<QueryError> for SubscribeError {
    fn from(e: QueryError) -> Self {
        SubscribeError::Query(e)
    }
}

/// Tuning knobs of a [`SubscriptionManager`].
#[derive(Debug, Clone)]
pub struct SubscribeConfig {
    /// How often the worker re-checks for pending touches when nobody
    /// kicks it (ingest observers kick it immediately; this is a safety
    /// net, not the latency floor).
    pub poll_interval: Duration,
    /// Bound of the event queue; on overflow the oldest event is dropped
    /// and the next drain reports [`SubscriptionEvent::Lagged`].
    pub event_capacity: usize,
}

impl Default for SubscribeConfig {
    fn default() -> Self {
        Self {
            poll_interval: Duration::from_millis(200),
            event_capacity: 1024,
        }
    }
}

/// Counters of a manager's activity so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubscribeStats {
    /// Worker evaluation passes completed (kicked or on the poll cadence).
    pub passes: u64,
    /// Per-subscription engine evaluations issued — registration
    /// evaluations plus incremental re-evaluations. A batch touching no
    /// subscription's footprint adds **zero** here.
    pub engine_queries: u64,
    /// Events pushed into the queue (including ones later dropped).
    pub events_emitted: u64,
    /// Events dropped by the bounded queue.
    pub events_dropped: u64,
    /// Failed evaluations (each also emitted an
    /// [`SubscriptionEvent::EvaluationFailed`]).
    pub errors: u64,
}

/// One registered standing query and its incremental-evaluation state.
struct SubState {
    query: SQuery,
    algorithm: Algorithm,
    trigger: Trigger,
    /// What the last answer read; an [`IngestTouch`] intersecting it
    /// schedules a re-evaluation.
    footprint: ReadFootprint,
    /// The last successfully computed answer.
    last_region: Option<ReachableRegion>,
    /// Must re-evaluate on the next pass regardless of touches: set after
    /// a failed evaluation, and at registration when a touch raced the
    /// initial evaluation.
    dirty: bool,
}

struct WorkerState {
    stop: bool,
    kicks_requested: u64,
    kicks_served: u64,
    /// `BTreeMap` so passes evaluate in stable id order — deterministic
    /// coalescing groups, deterministic event order.
    subs: BTreeMap<u64, SubState>,
    next_id: u64,
    /// Touches enqueued by ingest observers, drained by the next pass.
    pending: Vec<IngestTouch>,
    /// Total touches ever observed — the generation stamp on events.
    touch_seq: u64,
    events: VecDeque<SubscriptionEvent>,
    /// Events dropped since the last drain (reported as one `Lagged`).
    undrained_drops: u64,
    stats: SubscribeStats,
}

struct Shared<B: ServeBackend> {
    backend: Arc<B>,
    config: SubscribeConfig,
    state: Mutex<WorkerState>,
    cv: Condvar,
}

impl<B: ServeBackend> Shared<B> {
    fn lock(&self) -> MutexGuard<'_, WorkerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push_event(state: &mut WorkerState, capacity: usize, event: SubscriptionEvent) {
        state.stats.events_emitted += 1;
        if state.events.len() >= capacity.max(1) {
            state.events.pop_front();
            state.undrained_drops += 1;
            state.stats.events_dropped += 1;
        }
        state.events.push_back(event);
    }
}

/// Registers standing s-queries against a [`ServeBackend`] and keeps their
/// answers current by incremental re-evaluation on each ingest batch. See
/// the module docs for the design. Dropping the manager (or calling
/// [`SubscriptionManager::shutdown`]) stops the worker cleanly.
pub struct SubscriptionManager<B: ServeBackend> {
    shared: Arc<Shared<B>>,
    worker: Option<JoinHandle<()>>,
    /// Keeps the ingest observer alive exactly as long as the manager; the
    /// backend's leader engines hold it weakly and drop it with us.
    _observer: Arc<IngestObserver>,
}

impl<B: ServeBackend> SubscriptionManager<B> {
    /// Spawns the evaluation worker and registers the touch observer on
    /// `backend`'s leader engines (every shard leader on a sharded
    /// backend; their touches merge into one queue).
    pub fn spawn(backend: Arc<B>, config: SubscribeConfig) -> Self {
        let shared = Arc::new(Shared {
            backend: backend.clone(),
            config,
            state: Mutex::new(WorkerState {
                stop: false,
                kicks_requested: 0,
                kicks_served: 0,
                subs: BTreeMap::new(),
                next_id: 1,
                pending: Vec::new(),
                touch_seq: 0,
                events: VecDeque::new(),
                undrained_drops: 0,
                stats: SubscribeStats::default(),
            }),
            cv: Condvar::new(),
        });
        // The observer runs under the engine's ingest lock: enqueue the
        // touch, stamp the generation, kick the worker — nothing else.
        let observer: Arc<IngestObserver> = {
            let shared = Arc::clone(&shared);
            Arc::new(move |touch: &IngestTouch| {
                let mut state = shared.lock();
                state.touch_seq += 1;
                state.pending.push(touch.clone());
                state.kicks_requested += 1;
                shared.cv.notify_all();
            })
        };
        backend.observe_ingest(&observer);
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("streach-subscribe".into())
                .spawn(move || Self::worker_loop(&shared))
                .expect("spawn subscription worker")
        };
        Self {
            shared,
            worker: Some(worker),
            _observer: observer,
        }
    }

    fn worker_loop(shared: &Shared<B>) {
        loop {
            let serving = {
                let mut state = shared.lock();
                loop {
                    if state.stop {
                        return;
                    }
                    if state.kicks_requested > state.kicks_served {
                        break state.kicks_requested;
                    }
                    let (guard, timeout) = shared
                        .cv
                        .wait_timeout(state, shared.config.poll_interval)
                        .unwrap_or_else(|e| e.into_inner());
                    state = guard;
                    if timeout.timed_out() {
                        break state.kicks_requested;
                    }
                }
            };
            Self::run_pass(shared);
            let mut state = shared.lock();
            state.kicks_served = state.kicks_served.max(serving);
            state.stats.passes += 1;
            shared.cv.notify_all();
        }
    }

    /// One evaluation pass: drain the pending touches, intersect them with
    /// every subscription's footprint, re-evaluate the affected ones
    /// (affected SQMB subscriptions share bounding through one coalesced
    /// batch; ES runs serially), and apply the results — events, updated
    /// footprints, dirty marks for failures. Unaffected subscriptions do
    /// zero work. Evaluation runs **outside** the state lock, so
    /// subscribing/unsubscribing and event draining never block on engine
    /// I/O.
    fn run_pass(shared: &Shared<B>) {
        let (to_eval, generation) = {
            let mut state = shared.lock();
            let touches = std::mem::take(&mut state.pending);
            let generation = state.touch_seq;
            let mut to_eval: Vec<(u64, SQuery, Algorithm)> = Vec::new();
            for (&id, sub) in state.subs.iter_mut() {
                let affected =
                    sub.dirty || touches.iter().any(|touch| sub.footprint.touched_by(touch));
                if affected {
                    sub.dirty = false;
                    to_eval.push((id, sub.query, sub.algorithm));
                }
            }
            (to_eval, generation)
        };
        if to_eval.is_empty() {
            return;
        }

        let results = Self::evaluate(&shared.backend, &to_eval);

        let slot_s = shared.backend.slot_s();
        let mut state = shared.lock();
        state.stats.engine_queries += to_eval.len() as u64;
        for ((id, query, _), (outcome, max_region)) in to_eval.iter().zip(results) {
            // Unsubscribed while we evaluated: drop the result.
            let Some(sub) = state.subs.get_mut(id) else {
                continue;
            };
            match outcome {
                Ok(new_region) => {
                    sub.footprint = ReadFootprint::record(query, slot_s, max_region);
                    let old = sub.last_region.take();
                    let fired = sub.trigger.fired(old.as_ref(), &new_region);
                    let changed = old.as_ref() != Some(&new_region);
                    sub.last_region = Some(new_region.clone());
                    if changed || fired {
                        let event = SubscriptionEvent::Update(ReachabilityEvent {
                            id: SubscriptionId(*id),
                            old_region: old,
                            new_region,
                            trigger_fired: fired,
                            generation,
                        });
                        Shared::<B>::push_event(&mut state, shared.config.event_capacity, event);
                    }
                }
                Err(error) => {
                    // Keep the subscription registered and dirty: the next
                    // pass retries, so the next batch converges it.
                    sub.dirty = true;
                    state.stats.errors += 1;
                    let event = SubscriptionEvent::EvaluationFailed {
                        id: SubscriptionId(*id),
                        error,
                        generation,
                    };
                    Shared::<B>::push_event(&mut state, shared.config.event_capacity, event);
                }
            }
        }
        shared.cv.notify_all();
    }

    /// Evaluates a set of standing queries, in input order: SQMB members
    /// share bounding through one coalesced batch, ES runs serially. Each
    /// result carries the answer's maximum bounding region (empty for ES —
    /// its expansion has no sound segment scoping).
    #[allow(clippy::type_complexity)]
    fn evaluate(
        backend: &B,
        to_eval: &[(u64, SQuery, Algorithm)],
    ) -> Vec<(
        Result<ReachableRegion, QueryError>,
        Vec<streach_roadnet::SegmentId>,
    )> {
        let sqmb: Vec<SQuery> = to_eval
            .iter()
            .filter(|(_, _, a)| *a == Algorithm::SqmbTbs)
            .map(|&(_, q, _)| q)
            .collect();
        let mut coalesced = backend.try_s_query_coalesced(&sqmb).into_iter();
        to_eval
            .iter()
            .map(|(_, query, algorithm)| match algorithm {
                Algorithm::SqmbTbs => {
                    let answer = coalesced.next().expect("one answer per query");
                    (answer.outcome.map(|o| o.region), answer.max_region)
                }
                Algorithm::ExhaustiveSearch => (
                    backend
                        .try_s_query(query, Algorithm::ExhaustiveSearch)
                        .map(|o| o.region),
                    Vec::new(),
                ),
            })
            .collect()
    }

    /// Registers a standing query. The initial answer is computed
    /// synchronously (so the footprint exists before the next batch lands)
    /// and delivered as the subscription's first
    /// [`SubscriptionEvent::Update`] with `old_region: None`. Fails typed
    /// — nothing registered — when the query is invalid, off-network, or
    /// the initial evaluation hits a storage fault.
    pub fn subscribe(
        &self,
        query: SQuery,
        algorithm: Algorithm,
        trigger: Trigger,
    ) -> Result<SubscriptionId, SubscribeError> {
        query.validate()?;
        self.shared.backend.try_locate(&query.location)?;
        // Stamp the touch sequence before evaluating: if a batch lands
        // while we evaluate (the observer enqueues concurrently), the new
        // subscription is marked dirty so the next pass re-converges it —
        // its footprint may describe pre-batch state.
        let seq_before = self.shared.lock().touch_seq;
        let results = Self::evaluate(&self.shared.backend, &[(0, query, algorithm)]);
        let (outcome, max_region) = results.into_iter().next().expect("one result");
        let region = outcome?;

        let slot_s = self.shared.backend.slot_s();
        let mut state = self.shared.lock();
        let id = state.next_id;
        state.next_id += 1;
        state.stats.engine_queries += 1;
        let generation = state.touch_seq;
        let raced_ingest = state.touch_seq != seq_before;
        state.subs.insert(
            id,
            SubState {
                query,
                algorithm,
                trigger,
                footprint: ReadFootprint::record(&query, slot_s, max_region),
                last_region: Some(region.clone()),
                dirty: raced_ingest,
            },
        );
        let event = SubscriptionEvent::Update(ReachabilityEvent {
            id: SubscriptionId(id),
            old_region: None,
            new_region: region,
            trigger_fired: false,
            generation,
        });
        Shared::<B>::push_event(&mut state, self.shared.config.event_capacity, event);
        self.shared.cv.notify_all();
        Ok(SubscriptionId(id))
    }

    /// Removes a subscription; its queued events stay in the queue.
    pub fn unsubscribe(&self, id: SubscriptionId) -> Result<(), SubscribeError> {
        match self.shared.lock().subs.remove(&id.0) {
            Some(_) => Ok(()),
            None => Err(SubscribeError::UnknownSubscription(id)),
        }
    }

    /// Number of registered subscriptions.
    pub fn subscriptions(&self) -> usize {
        self.shared.lock().subs.len()
    }

    /// Ids of every registered subscription, ascending.
    pub fn subscription_ids(&self) -> Vec<SubscriptionId> {
        self.shared
            .lock()
            .subs
            .keys()
            .map(|&id| SubscriptionId(id))
            .collect()
    }

    /// The last successfully computed answer of a subscription — the
    /// "current state" a consumer re-reads after a `Lagged` notice.
    /// `None` only when every evaluation so far failed.
    pub fn last_region(
        &self,
        id: SubscriptionId,
    ) -> Result<Option<ReachableRegion>, SubscribeError> {
        match self.shared.lock().subs.get(&id.0) {
            Some(sub) => Ok(sub.last_region.clone()),
            None => Err(SubscribeError::UnknownSubscription(id)),
        }
    }

    /// Drains every queued event, oldest first. When the bounded queue
    /// overflowed since the last drain, the result leads with one
    /// [`SubscriptionEvent::Lagged`] carrying the total miss count.
    pub fn poll_events(&self) -> Vec<SubscriptionEvent> {
        let mut state = self.shared.lock();
        let mut out = Vec::with_capacity(state.events.len() + 1);
        if state.undrained_drops > 0 {
            out.push(SubscriptionEvent::Lagged {
                missed: std::mem::take(&mut state.undrained_drops),
            });
        }
        out.extend(state.events.drain(..));
        out
    }

    /// Blocks up to `timeout` for the next event ([`SubscriptionEvent::Lagged`]
    /// first when the queue overflowed); `None` on timeout.
    pub fn next_event(&self, timeout: Duration) -> Option<SubscriptionEvent> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.shared.lock();
        loop {
            if state.undrained_drops > 0 {
                return Some(SubscriptionEvent::Lagged {
                    missed: std::mem::take(&mut state.undrained_drops),
                });
            }
            if let Some(event) = state.events.pop_front() {
                return Some(event);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .shared
                .cv
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Marks every subscription dirty: the next pass re-evaluates all of
    /// them regardless of footprints. This is the "full re-evaluation"
    /// mode — what every batch would cost without incremental filtering —
    /// used by the `--subscriptions` bench as the comparison baseline.
    pub fn invalidate_all(&self) {
        let mut state = self.shared.lock();
        for sub in state.subs.values_mut() {
            sub.dirty = true;
        }
    }

    /// Wakes the worker for an immediate evaluation pass without waiting.
    pub fn kick(&self) {
        let mut state = self.shared.lock();
        state.kicks_requested += 1;
        self.shared.cv.notify_all();
    }

    /// Kicks the worker and blocks until that pass completed — the
    /// deterministic hook: after `run_now` returns, every subscription an
    /// already-applied batch affected has been re-evaluated (or its
    /// failure recorded as an event).
    pub fn run_now(&self) {
        let mut state = self.shared.lock();
        state.kicks_requested += 1;
        let ticket = state.kicks_requested;
        self.shared.cv.notify_all();
        while state.kicks_served < ticket {
            state = self
                .shared
                .cv
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Activity counters so far.
    pub fn stats(&self) -> SubscribeStats {
        self.shared.lock().stats
    }

    fn stop_and_join(&mut self) {
        {
            let mut state = self.shared.lock();
            state.stop = true;
            self.shared.cv.notify_all();
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }

    /// Stops the worker cleanly (the in-flight pass finishes first) and
    /// returns every event still queued.
    pub fn shutdown(mut self) -> Vec<SubscriptionEvent> {
        self.stop_and_join();
        self.poll_events()
    }
}

impl<B: ServeBackend> Drop for SubscriptionManager<B> {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::ReachableRegion;
    use streach_roadnet::SegmentId;

    fn region(segments: Vec<u32>, km: f64) -> ReachableRegion {
        ReachableRegion {
            segments: segments.into_iter().map(SegmentId).collect(),
            total_length_km: km,
        }
    }

    #[test]
    fn trigger_semantics() {
        let a = region(vec![1, 2], 5.0);
        let b = region(vec![1], 3.0);
        // No transition on the initial evaluation.
        assert!(!Trigger::AnyRegionChange.fired(None, &a));
        assert!(!Trigger::LengthBelowKm(10.0).fired(None, &b));
        // Region change.
        assert!(Trigger::AnyRegionChange.fired(Some(&a), &b));
        assert!(!Trigger::AnyRegionChange.fired(Some(&a), &a.clone()));
        // Threshold crossing fires exactly at the crossing, not while below.
        assert!(Trigger::LengthBelowKm(4.0).fired(Some(&a), &b));
        assert!(!Trigger::LengthBelowKm(4.0).fired(Some(&b), &b.clone()));
        assert!(!Trigger::LengthBelowKm(2.0).fired(Some(&a), &b));
    }
}
