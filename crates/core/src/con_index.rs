//! The Connection Index (Con-Index).
//!
//! "The basic idea is to use the historical trajectory data to build a
//! connection table for each road segment and record the lower and upper
//! bound of its reachable road segments based on our temporal granularity.
//! In particular, each road segment with different temporal granularity is
//! associated with: 1) Near ID list (lower bound range) and 2) Far ID list
//! (upper bound range) indicating the nearest (farthest) road segments that
//! could be arrived at within the given time slot." (Section 3.2.2)
//!
//! A connection table is built per Δt slot by running the network-expansion
//! algorithm with the historical **minimum** observed speed (Near list) and
//! the historical **maximum** observed speed (Far list) of every segment.
//!
//! # Memory model
//!
//! The paper builds the full Con-Index offline over a 194 GB dataset and a
//! city-scale network; the table for every slot of the day would not fit in
//! the memory budget of a laptop-scale reproduction. This implementation
//! therefore materialises connection tables **per slot on demand** and keeps
//! the most recently used `max_cached_slots` of them (see
//! [`IndexConfig::max_cached_con_slots`](crate::config::IndexConfig)); the
//! benchmark harness pre-builds the slots its workload touches via
//! [`ConIndex::build_slots`] so that query timings never include table
//! construction, matching the paper's offline-index assumption.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use streach_roadnet::{expand_within_time, RoadNetwork, SegmentId};

use crate::config::IndexConfig;
use crate::speed_stats::SpeedStats;

/// The Near and Far ID lists of one road segment in one time slot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConnectionLists {
    /// Segments reachable within one Δt at the minimum historical speed
    /// (lower bound), excluding the segment itself, sorted by ID.
    pub near: Vec<SegmentId>,
    /// Segments reachable within one Δt at the maximum historical speed
    /// (upper bound), excluding the segment itself, sorted by ID.
    pub far: Vec<SegmentId>,
}

/// The connection table of one time slot: one [`ConnectionLists`] per
/// segment, indexed by segment ID.
pub struct SlotTable {
    slot: u32,
    lists: Vec<ConnectionLists>,
}

impl SlotTable {
    /// The slot this table describes.
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// Far ID list (upper bound) of a segment.
    pub fn far(&self, segment: SegmentId) -> &[SegmentId] {
        &self.lists[segment.index()].far
    }

    /// Near ID list (lower bound) of a segment.
    pub fn near(&self, segment: SegmentId) -> &[SegmentId] {
        &self.lists[segment.index()].near
    }

    /// Both lists of a segment.
    pub fn lists(&self, segment: SegmentId) -> &ConnectionLists {
        &self.lists[segment.index()]
    }

    /// Every segment's lists in segment-ID order (snapshot export).
    pub(crate) fn all_lists(&self) -> &[ConnectionLists] {
        &self.lists
    }

    /// Total number of IDs stored in this table.
    pub fn total_entries(&self) -> usize {
        self.lists.iter().map(|l| l.near.len() + l.far.len()).sum()
    }
}

struct Cache {
    tables: HashMap<u32, Arc<SlotTable>>,
    /// Most recently used at the back.
    lru: Vec<u32>,
    built: u64,
    evicted: u64,
}

/// The Con-Index.
pub struct ConIndex {
    network: Arc<RoadNetwork>,
    /// The historical speed statistics the tables derive from. Behind a
    /// copy-on-write `RwLock<Arc<..>>` so streaming ingest can fold new
    /// observations in while an in-flight table build keeps reading its own
    /// consistent version.
    speed_stats: RwLock<Arc<SpeedStats>>,
    /// Bumped on every statistics update; a table built against an older
    /// version is served to its in-flight query but never cached, so an
    /// ingest racing a table build cannot pin stale Near/Far lists.
    stats_version: std::sync::atomic::AtomicU64,
    slot_s: u32,
    slots_per_day: u32,
    fallback_min_speed_ms: f64,
    max_cached_slots: usize,
    cache: Mutex<Cache>,
}

/// Size/construction statistics of the Con-Index cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConIndexStats {
    /// Number of slot tables currently resident.
    pub cached_slots: usize,
    /// Number of slot tables built since creation.
    pub slots_built: u64,
    /// Number of slot tables evicted since creation.
    pub slots_evicted: u64,
}

impl ConIndex {
    /// Creates a Con-Index over the network using the given historical speed
    /// statistics. Tables are built lazily; call [`ConIndex::build_slots`] to
    /// pre-build specific slots.
    pub fn new(
        network: Arc<RoadNetwork>,
        speed_stats: Arc<SpeedStats>,
        config: &IndexConfig,
    ) -> Self {
        assert_eq!(
            speed_stats.slot_s(),
            config.slot_s,
            "speed statistics must use the same Δt as the Con-Index"
        );
        Self {
            network,
            speed_stats: RwLock::new(speed_stats),
            stats_version: std::sync::atomic::AtomicU64::new(0),
            slot_s: config.slot_s,
            slots_per_day: config.slots_per_day(),
            fallback_min_speed_ms: config.fallback_min_speed_ms,
            max_cached_slots: config.max_cached_con_slots.max(1),
            cache: Mutex::new(Cache {
                tables: HashMap::new(),
                lru: Vec::new(),
                built: 0,
                evicted: 0,
            }),
        }
    }

    /// The temporal granularity Δt in seconds.
    pub fn slot_s(&self) -> u32 {
        self.slot_s
    }

    /// The historical speed statistics the tables are derived from (the
    /// current version; ingest may publish a newer one later).
    pub(crate) fn speed_stats(&self) -> Arc<SpeedStats> {
        Arc::clone(&self.speed_stats.read())
    }

    /// Number of (segment, slot, trajectory) speed observations currently
    /// folded into the statistics — batch-built plus ingested. Two engines
    /// over the same logical dataset must agree on this count, which makes
    /// it the cheap outside probe for ingest/rebuild equivalence of the
    /// speed pipeline on the fault-free path. After a mid-ingest storage
    /// failure, at-least-once replay may re-apply a record: the min/max
    /// data converges (idempotent), but this counter can over-count the
    /// re-applied observations.
    pub fn speed_observations(&self) -> u64 {
        self.speed_stats.read().num_observations()
    }

    /// Folds new consecutive-visit pairs into the speed statistics
    /// (copy-on-write; see [`SpeedStats::observe_pair`]) and — when at
    /// least one pair produced a valid observation — drops the cached
    /// connection tables of exactly the slots the pairs touch: a speed
    /// observation for slot `s` only changes that slot's statistics cells,
    /// so other slots' Near/Far lists stay valid and continuous streaming
    /// ingest does not flatten the whole table cache. Returns the number
    /// of valid observations.
    pub(crate) fn apply_speed_pairs(
        &self,
        network: &RoadNetwork,
        pairs: &[(SegmentId, u32, u32)],
    ) -> usize {
        if pairs.is_empty() {
            return 0;
        }
        let observed = {
            let mut guard = self.speed_stats.write();
            let stats = Arc::make_mut(&mut guard);
            pairs
                .iter()
                .filter(|(segment, enter, next_enter)| {
                    stats.observe_pair(network, *segment, *enter, *next_enter)
                })
                .count()
        };
        if observed > 0 {
            let mut touched: Vec<u32> = pairs
                .iter()
                .map(|(_, enter, _)| crate::time::slot_of(*enter, self.slot_s))
                .collect();
            touched.sort_unstable();
            touched.dedup();
            // Bump the version and drop the stale tables under the cache
            // lock, so a concurrent `slot_table` build that started
            // against the old statistics observes the bump and skips
            // caching.
            let mut cache = self.cache.lock();
            self.stats_version
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            for slot in touched {
                if cache.tables.remove(&slot).is_some() {
                    cache.lru.retain(|s| *s != slot);
                    cache.evicted += 1;
                }
            }
        }
        observed
    }

    /// The currently cached connection tables in ascending slot order
    /// (snapshot export).
    pub(crate) fn export_cached_tables(&self) -> Vec<(u32, Arc<SlotTable>)> {
        let cache = self.cache.lock();
        let mut out: Vec<(u32, Arc<SlotTable>)> = cache
            .tables
            .iter()
            .map(|(slot, table)| (*slot, Arc::clone(table)))
            .collect();
        out.sort_unstable_by_key(|(slot, _)| *slot);
        out
    }

    /// Installs pre-built connection tables (snapshot import). Tables beyond
    /// the cache capacity are dropped in insertion order, matching a cold
    /// rebuild followed by the same access sequence.
    pub(crate) fn install_tables(&self, tables: Vec<(u32, Vec<ConnectionLists>)>) {
        let mut cache = self.cache.lock();
        for (slot, lists) in tables {
            let slot = slot % self.slots_per_day;
            cache
                .tables
                .insert(slot, Arc::new(SlotTable { slot, lists }));
            cache.lru.retain(|s| *s != slot);
            cache.lru.push(slot);
            while cache.tables.len() > self.max_cached_slots {
                let victim = cache.lru.remove(0);
                cache.tables.remove(&victim);
            }
        }
    }

    /// Cache statistics.
    pub fn stats(&self) -> ConIndexStats {
        let cache = self.cache.lock();
        ConIndexStats {
            cached_slots: cache.tables.len(),
            slots_built: cache.built,
            slots_evicted: cache.evicted,
        }
    }

    /// Pre-builds the connection tables of the given slots (deduplicated).
    pub fn build_slots(&self, slots: &[u32]) {
        for &slot in slots {
            let _ = self.slot_table(slot);
        }
    }

    /// Returns the connection table of a slot, building it if necessary.
    pub fn slot_table(&self, slot: u32) -> Arc<SlotTable> {
        let slot = slot % self.slots_per_day;
        {
            let mut cache = self.cache.lock();
            if let Some(table) = cache.tables.get(&slot).cloned() {
                // Refresh LRU position.
                cache.lru.retain(|s| *s != slot);
                cache.lru.push(slot);
                return table;
            }
        }
        let version = self.stats_version.load(std::sync::atomic::Ordering::SeqCst);
        let table = Arc::new(self.build_table(slot));
        let mut cache = self.cache.lock();
        cache.built += 1;
        if self.stats_version.load(std::sync::atomic::Ordering::SeqCst) != version {
            // An ingest updated the statistics while this table was being
            // built: serve it to the caller (its query began before the
            // update) but do not cache it — the next query rebuilds from
            // the current statistics.
            return table;
        }
        cache.tables.insert(slot, Arc::clone(&table));
        cache.lru.retain(|s| *s != slot);
        cache.lru.push(slot);
        while cache.tables.len() > self.max_cached_slots {
            let victim = cache.lru.remove(0);
            cache.tables.remove(&victim);
            cache.evicted += 1;
        }
        table
    }

    /// Both lists of one segment in one slot (convenience used in tests and
    /// small tools; the query algorithms use [`ConIndex::slot_table`]).
    pub fn connection_lists(&self, segment: SegmentId, slot: u32) -> ConnectionLists {
        self.slot_table(slot).lists(segment).clone()
    }

    fn build_table(&self, slot: u32) -> SlotTable {
        let network = &self.network;
        // Pin one consistent stats version for the whole build; a
        // concurrent ingest publishes a new Arc without disturbing it.
        let stats = self.speed_stats();
        let budget = self.slot_s as f64;
        let n = network.num_segments();
        // One independent pair of bounded expansions per segment —
        // embarrassingly parallel, and the dominant cost of warming a slot.
        let seg_ids: Vec<u32> = (0..n as u32).collect();
        let lists = streach_par::par_map(&seg_ids, |&seg_idx| {
            let seg = SegmentId(seg_idx);
            let far_exp = expand_within_time(network, &[seg], budget, |s| {
                stats.max_speed_ms(network, s, slot)
            });
            let near_exp = expand_within_time(network, &[seg], budget, |s| {
                stats.min_speed_ms(network, s, slot, self.fallback_min_speed_ms)
            });
            let mut far: Vec<SegmentId> = far_exp
                .reached()
                .into_iter()
                .filter(|s| *s != seg)
                .collect();
            let mut near: Vec<SegmentId> = near_exp
                .reached()
                .into_iter()
                .filter(|s| *s != seg)
                .collect();
            far.sort_unstable();
            near.sort_unstable();
            ConnectionLists { near, far }
        });
        SlotTable { slot, lists }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::{FleetConfig, TrajectoryDataset};

    fn setup(max_cached: usize) -> (Arc<RoadNetwork>, ConIndex) {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(&network, FleetConfig::tiny());
        let config = IndexConfig {
            max_cached_con_slots: max_cached,
            ..Default::default()
        };
        let stats = Arc::new(SpeedStats::from_dataset(&network, &dataset, config.slot_s));
        let con = ConIndex::new(network.clone(), stats, &config);
        (network, con)
    }

    #[test]
    fn near_is_subset_of_far() {
        let (network, con) = setup(8);
        let slot = 100; // 08:20, inside the tiny fleet's operating window
        let table = con.slot_table(slot);
        for seg in network.segment_ids() {
            let lists = table.lists(seg);
            for n in &lists.near {
                assert!(
                    lists.far.contains(n),
                    "near segment {n} missing from far list of {seg}"
                );
            }
            // Lists never contain the segment itself and are sorted.
            assert!(!lists.far.contains(&seg));
            assert!(!lists.near.contains(&seg));
            assert!(lists.far.windows(2).all(|w| w[0] < w[1]));
            assert!(lists.near.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn far_lists_are_nonempty_and_contain_successors() {
        let (network, con) = setup(8);
        let table = con.slot_table(110);
        for seg in network.segment_ids().take(50) {
            let far = table.far(seg);
            assert!(!far.is_empty(), "far list of {seg} empty");
            // Direct successors are always reachable within a 5-minute slot
            // on a 500 m grid.
            for succ in network.successors(seg) {
                assert!(
                    far.contains(&succ),
                    "successor {succ} of {seg} not in far list"
                );
            }
        }
    }

    #[test]
    fn tables_are_cached_and_evicted_lru() {
        let (_, con) = setup(2);
        let t1 = con.slot_table(100);
        let t1_again = con.slot_table(100);
        assert!(
            Arc::ptr_eq(&t1, &t1_again),
            "same slot must be served from cache"
        );
        assert_eq!(con.stats().slots_built, 1);
        let _t2 = con.slot_table(101);
        let _t3 = con.slot_table(102); // evicts slot 100? no: 100 was most recently used before 101...
        let stats = con.stats();
        assert_eq!(stats.slots_built, 3);
        assert_eq!(stats.cached_slots, 2);
        assert_eq!(stats.slots_evicted, 1);
    }

    #[test]
    fn build_slots_prebuilds() {
        let (_, con) = setup(8);
        con.build_slots(&[100, 101, 102, 100]);
        let stats = con.stats();
        assert_eq!(stats.slots_built, 3);
        assert_eq!(stats.cached_slots, 3);
    }

    #[test]
    fn slot_wraps_around_day() {
        let (network, con) = setup(8);
        let a = con.connection_lists(network.segment_ids().next().unwrap(), 5);
        let b = con.connection_lists(network.segment_ids().next().unwrap(), 5 + 288);
        assert_eq!(a, b);
        assert_eq!(
            con.stats().slots_built,
            1,
            "wrapped slot must reuse the cached table"
        );
    }

    #[test]
    fn total_entries_counts_both_lists() {
        let (network, con) = setup(8);
        let table = con.slot_table(120);
        let manual: usize = network
            .segment_ids()
            .map(|s| table.far(s).len() + table.near(s).len())
            .sum();
        assert_eq!(table.total_entries(), manual);
        assert!(table.total_entries() > 0);
        assert_eq!(table.slot(), 120);
    }

    #[test]
    #[should_panic(expected = "same Δt")]
    fn mismatched_granularity_rejected() {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(&network, FleetConfig::tiny());
        let stats = Arc::new(SpeedStats::from_dataset(&network, &dataset, 600));
        let config = IndexConfig {
            slot_s: 300,
            ..Default::default()
        };
        let _ = ConIndex::new(network, stats, &config);
    }
}
