//! WAL shipping: leader → follower replication for read replicas.
//!
//! A serving leader already writes every ingest batch to a CRC-framed,
//! generation-stamped WAL before applying it. Replication reuses that log
//! as the shipping medium:
//!
//! * [`streach_storage::WalTail`] polls the leader's WAL file and yields
//!   contiguous, CRC-verified record batches (a torn tail is simply "not
//!   yet" — the leader's in-flight append completes on the next poll),
//! * each replica persists the shipped frames **verbatim** into a
//!   [`streach_storage::FollowerLog`] — byte-compatible with a leader WAL,
//!   so the follower's log is always a valid `attach_wal` target — and
//! * applies the decoded batches through
//!   [`ReachabilityEngine::apply_replicated`], the same normalization and
//!   posting path batch ingest uses, gated exactly-once by (generation,
//!   ordinal) so a re-shipped prefix (replica bootstrapped from a snapshot
//!   that already covers it) is skipped, and a gap is a hard error instead
//!   of a silently diverging replica.
//!
//! Convergence is observable: [`ReplicaSet::status`] reports each
//! replica's shipped and applied (generation, records), and
//! [`ReplicaSet::converged`] compares them against the leader's WAL
//! position. Two engines at the same applied position hold byte-identical
//! postings — the bit-equality `tests/sharded_equivalence.rs` pins.
//!
//! # Checkpoints: ship before rotate
//!
//! A leader checkpoint rotates its WAL (new generation, records reset)
//! once every record is folded into the snapshot. Records of the retiring
//! generation that were never shipped would be lost to followers, so
//! [`ReplicaSet::checkpoint_leader`] drains the tail to every follower
//! *first*, then saves. Followers observe the rotation as a generation
//! change on the next shipped batch and reset their local log.
//!
//! # Failover
//!
//! When a leader's store dies, [`ReplicaSet::promote`] turns a follower
//! into a leader: its engine already applied the shipped tail, and
//! attaching its own follower log (a byte-compatible WAL whose applied
//! prefix is recorded in the engine) makes it writable. The promoted
//! engine replays nothing when it was converged, and exactly the shipped
//! but-not-yet-applied suffix otherwise.

use std::path::Path;
use std::sync::Arc;

use streach_storage::{FollowerLog, StorageError, StorageResult, WalTail};

use crate::engine::ReachabilityEngine;
use crate::ingest::WalAttach;

/// One follower: an engine applying shipped records plus its local
/// byte-compatible copy of the leader's WAL.
struct Follower {
    engine: Arc<ReachabilityEngine>,
    log: FollowerLog,
}

/// Observable replication state of one follower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Generation of the follower's local log (the last shipped one).
    pub shipped_generation: u64,
    /// Records persisted in the follower's local log.
    pub shipped_records: u64,
    /// WAL generation the follower's engine has applied into.
    pub applied_generation: u64,
    /// Records of that generation the engine has applied (its offset).
    pub applied_records: u64,
}

impl ReplicaStatus {
    /// Records shipped to this follower but not yet applied by its engine
    /// (0 when generations disagree mid-rotation — the new generation's
    /// log starts empty).
    pub fn lag_records(&self) -> u64 {
        if self.shipped_generation == self.applied_generation {
            self.shipped_records.saturating_sub(self.applied_records)
        } else {
            0
        }
    }
}

/// A leader engine, its WAL tail, and the set of followers records are
/// shipped to. Single-threaded by design: shipping is a maintenance
/// activity (driven from a background loop or interleaved with ingest),
/// while the follower engines serve reads concurrently — apply goes
/// through the same ingest lock batch ingest takes.
pub struct ReplicaSet {
    leader: Arc<ReachabilityEngine>,
    tail: WalTail,
    followers: Vec<Follower>,
}

impl ReplicaSet {
    /// Starts a replica set for `leader`, whose WAL lives at `leader_wal`
    /// (the path passed to [`ReachabilityEngine::attach_wal`]).
    pub fn new<P: AsRef<Path>>(leader: Arc<ReachabilityEngine>, leader_wal: P) -> Self {
        Self {
            leader,
            tail: WalTail::new(leader_wal),
            followers: Vec::new(),
        }
    }

    /// The leader engine.
    pub fn leader(&self) -> &Arc<ReachabilityEngine> {
        &self.leader
    }

    /// Registers a follower and creates its local log at `log_path`.
    /// `engine` must be a replica of the leader's state — typically opened
    /// from a copy of the leader's snapshot
    /// ([`ReachabilityEngine::open_snapshot_standalone`] when the snapshot
    /// was saved self-contained) — and must **not** have a WAL attached
    /// (followers are read-only until promoted). Register followers before
    /// the first [`ReplicaSet::ship`] call (or right after a leader
    /// checkpoint): the tail cursor is shared, so records polled earlier
    /// are not re-shipped to late joiners.
    pub fn add_replica<P: AsRef<Path>>(
        &mut self,
        engine: Arc<ReachabilityEngine>,
        log_path: P,
    ) -> StorageResult<usize> {
        let (generation, _) = engine.wal_position();
        let log = FollowerLog::create(log_path, generation)?;
        self.followers.push(Follower { engine, log });
        Ok(self.followers.len() - 1)
    }

    /// The follower engine registered as `index` (serving reads).
    pub fn replica(&self, index: usize) -> &Arc<ReachabilityEngine> {
        &self.followers[index].engine
    }

    /// Number of registered followers.
    pub fn num_replicas(&self) -> usize {
        self.followers.len()
    }

    /// Polls the leader's WAL and ships every newly durable record to
    /// every follower: frames are persisted verbatim into each local log,
    /// then applied through the exactly-once replicated-apply gate.
    /// Returns the number of records shipped. A torn leader tail stops the
    /// batch early and is retried on the next call.
    pub fn ship(&mut self) -> StorageResult<u64> {
        let mut shipped = 0u64;
        while let Some(batch) = self.tail.poll()? {
            for follower in &mut self.followers {
                if batch.generation != follower.log.generation() {
                    // A generation change always starts at record 0 (the
                    // leader rotated); anything else means this follower
                    // missed a rotation's worth of records.
                    if batch.start_record != 0 {
                        return Err(StorageError::corrupt(format!(
                            "follower log at generation {} cannot accept generation {} \
                             starting mid-stream at record {}",
                            follower.log.generation(),
                            batch.generation,
                            batch.start_record
                        )));
                    }
                    follower.log.reset(batch.generation)?;
                }
                follower.log.append_shipped(&batch)?;
                for (i, payload) in batch.payloads.iter().enumerate() {
                    let record = crate::ingest::decode_record(payload)?;
                    follower.engine.apply_replicated(
                        batch.generation,
                        batch.start_record + i as u64,
                        &record.points,
                        record.prenormalized,
                    )?;
                }
            }
            shipped += batch.payloads.len() as u64;
        }
        // A drained poll still latches a rotated header: when the leader
        // checkpointed and its fresh generation holds no records yet,
        // propagate the rotation so caught-up followers converge on the new
        // generation instead of reporting the retired one until the next
        // record arrives. Generations only move forward, so a tail that has
        // not latched onto the leader's log yet (generation 0) is ignored.
        let (tail_generation, tail_records) = self.tail.position();
        if tail_records == 0 {
            for follower in &mut self.followers {
                if tail_generation > follower.log.generation() {
                    follower.log.reset(tail_generation)?;
                    follower
                        .engine
                        .observe_replicated_rotation(tail_generation)?;
                }
            }
        }
        Ok(shipped)
    }

    /// Replication state of every follower, in registration order.
    pub fn status(&self) -> Vec<ReplicaStatus> {
        self.followers
            .iter()
            .map(|f| {
                let (applied_generation, applied_records) = f.engine.wal_position();
                ReplicaStatus {
                    shipped_generation: f.log.generation(),
                    shipped_records: f.log.records(),
                    applied_generation,
                    applied_records,
                }
            })
            .collect()
    }

    /// `true` when every follower has applied exactly the leader's WAL
    /// position — at which point leader and followers answer every query
    /// bit-identically.
    pub fn converged(&self) -> bool {
        let (generation, applied) = self.leader.wal_position();
        self.status()
            .iter()
            .all(|s| s.applied_generation == generation && s.applied_records == applied)
    }

    /// Checkpoints the leader into `dir` with the **ship-before-rotate**
    /// protocol: first drains the WAL tail to every follower, then saves —
    /// the save may rotate the leader's WAL (retiring records followers
    /// could otherwise never receive). Incremental, so a periodic
    /// checkpoint of a serving leader stays cheap.
    pub fn checkpoint_leader<P: AsRef<Path>>(&mut self, dir: P) -> StorageResult<()> {
        self.ship()?;
        self.leader.save_incremental_snapshot(&dir)?;
        // The save may have rotated the leader's WAL; ship again so
        // followers observe the new (empty) generation right away instead
        // of on the next scheduled shipping round.
        self.ship()?;
        Ok(())
    }

    /// Fails over to follower `index`: detaches it from the set and
    /// attaches its local log, making the engine writable — the new
    /// leader. The follower's log is a byte-compatible WAL, so the attach
    /// replays exactly the shipped-but-unapplied suffix (nothing, for a
    /// converged follower). Call [`ReplicaSet::ship`] first if the old
    /// leader's WAL is still readable, to shrink the data-loss window to
    /// records the old leader never made durable.
    ///
    /// The remaining followers (and the dead leader) are dropped with the
    /// set; rebuild a [`ReplicaSet`] around the promoted engine to resume
    /// replication.
    pub fn promote(mut self, index: usize) -> StorageResult<(Arc<ReachabilityEngine>, WalAttach)> {
        let follower = self.followers.swap_remove(index);
        let log_path = follower.log.path().to_path_buf();
        // Close our handle before the engine reopens the file as its WAL.
        drop(follower.log);
        let attach = follower.engine.attach_wal(&log_path)?;
        Ok((follower.engine, attach))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use crate::config::IndexConfig;
    use crate::query::{Algorithm, SQuery};
    use streach_roadnet::{GeneratorConfig, SegmentId, SyntheticCity};
    use streach_traj::{FleetConfig, TrajPoint, TrajectoryDataset};

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("streach-replicate-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn copy_dir(src: &Path, dst: &Path) {
        std::fs::create_dir_all(dst).unwrap();
        for entry in std::fs::read_dir(src).unwrap().flatten() {
            if entry.file_type().unwrap().is_file() {
                std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
            }
        }
    }

    #[test]
    fn shipped_replica_converges_and_answers_identically() {
        let root = tmp_dir("converge");
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig {
                num_taxis: 8,
                num_days: 2,
                ..FleetConfig::tiny()
            },
        );
        let leader = Arc::new(
            EngineBuilder::new(network.clone(), &dataset)
                .index_config(IndexConfig {
                    read_latency_us: 0,
                    ..IndexConfig::default()
                })
                .build(),
        );
        leader
            .save_snapshot_self_contained(root.join("leader"))
            .unwrap();
        leader
            .attach_wal(root.join("leader").join("ingest.wal"))
            .unwrap();

        // Bootstrap a replica from shipped artifacts alone.
        copy_dir(&root.join("leader"), &root.join("replica"));
        let _ = std::fs::remove_file(root.join("replica").join("ingest.wal"));
        let replica =
            Arc::new(ReachabilityEngine::open_snapshot_standalone(root.join("replica")).unwrap());

        let mut set = ReplicaSet::new(leader.clone(), root.join("leader").join("ingest.wal"));
        set.add_replica(replica.clone(), root.join("replica").join("follower.wal"))
            .unwrap();

        // Ingest at the leader, ship, and compare.
        let points: Vec<TrajPoint> = (0..20)
            .map(|i| TrajPoint {
                traj_id: 1000 + i % 3,
                date: 1,
                segment: SegmentId((i * 7) % network.num_segments() as u32),
                enter_time_s: 9 * 3600 + i * 45,
            })
            .collect();
        leader.ingest(&points).unwrap();
        assert!(!set.converged());
        let shipped = set.ship().unwrap();
        assert!(shipped > 0);
        assert!(set.converged());
        let status = &set.status()[0];
        assert_eq!(status.lag_records(), 0);

        let query = SQuery {
            location: network.bounds().center(),
            start_time_s: 9 * 3600,
            duration_s: 600,
            prob: 0.2,
        };
        let want = leader.try_s_query(&query, Algorithm::SqmbTbs).unwrap();
        let got = replica.try_s_query(&query, Algorithm::SqmbTbs).unwrap();
        assert_eq!(want.region, got.region);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpoint_ships_before_rotating_and_followers_track_generations() {
        let root = tmp_dir("rotate");
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig {
                num_taxis: 6,
                num_days: 2,
                ..FleetConfig::tiny()
            },
        );
        let leader = Arc::new(
            EngineBuilder::new(network.clone(), &dataset)
                .index_config(IndexConfig {
                    read_latency_us: 0,
                    ..IndexConfig::default()
                })
                .build(),
        );
        let home = root.join("leader");
        leader.save_snapshot_self_contained(&home).unwrap();
        leader.attach_wal(home.join("ingest.wal")).unwrap();

        copy_dir(&home, &root.join("replica"));
        let _ = std::fs::remove_file(root.join("replica").join("ingest.wal"));
        let replica =
            Arc::new(ReachabilityEngine::open_snapshot_standalone(root.join("replica")).unwrap());
        let mut set = ReplicaSet::new(leader.clone(), home.join("ingest.wal"));
        set.add_replica(replica.clone(), root.join("replica").join("follower.wal"))
            .unwrap();

        let batch = |base: u32| -> Vec<TrajPoint> {
            (0..5)
                .map(|i| TrajPoint {
                    traj_id: 500 + i,
                    date: 1,
                    segment: SegmentId((base + i * 11) % network.num_segments() as u32),
                    enter_time_s: 10 * 3600 + (base + i) * 30,
                })
                .collect()
        };
        leader.ingest(&batch(0)).unwrap();
        // The checkpoint drains the tail first, then rotates the WAL.
        set.checkpoint_leader(&home).unwrap();
        assert!(set.converged());
        let gen_after_rotate = leader.wal_position().0;
        assert!(gen_after_rotate > 0, "home checkpoint rotates the WAL");

        // Records of the new generation ship too; the follower log resets.
        leader.ingest(&batch(100)).unwrap();
        set.ship().unwrap();
        assert!(set.converged());
        let status = &set.status()[0];
        assert_eq!(status.shipped_generation, gen_after_rotate);
        assert_eq!(status.applied_generation, gen_after_rotate);

        let query = SQuery {
            location: network.bounds().center(),
            start_time_s: 10 * 3600,
            duration_s: 600,
            prob: 0.2,
        };
        let want = leader.try_s_query(&query, Algorithm::SqmbTbs).unwrap();
        let got = replica.try_s_query(&query, Algorithm::SqmbTbs).unwrap();
        assert_eq!(want.region, got.region);

        // Promotion: the converged follower becomes a writable leader.
        let (promoted, attach) = set.promote(0).unwrap();
        assert_eq!(
            attach.records_replayed, 0,
            "converged follower replays nothing"
        );
        promoted.ingest(&batch(200)).unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }
}
