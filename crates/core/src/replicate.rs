//! WAL shipping: leader → follower replication for read replicas.
//!
//! A serving leader already writes every ingest batch to a CRC-framed,
//! generation-stamped WAL before applying it. Replication reuses that log
//! as the shipping medium:
//!
//! * [`streach_storage::WalTail`] polls the leader's WAL file and yields
//!   contiguous, CRC-verified record batches (a torn tail is simply "not
//!   yet" — the leader's in-flight append completes on the next poll),
//! * each replica persists the shipped frames **verbatim** into a
//!   [`streach_storage::FollowerLog`] — byte-compatible with a leader WAL,
//!   so the follower's log is always a valid `attach_wal` target — and
//! * applies the decoded batches through
//!   [`ReachabilityEngine::apply_replicated`], the same normalization and
//!   posting path batch ingest uses, gated exactly-once by (generation,
//!   ordinal) so a re-shipped prefix (replica bootstrapped from a snapshot
//!   that already covers it) is skipped, and a gap is a hard error instead
//!   of a silently diverging replica.
//!
//! Shipping is interior-mutability-safe (`&self` behind one lock), so a
//! background [`ReplicationController`], an explicit
//! [`ReplicaSet::checkpoint_leader`], and serving reads coexist on one
//! `Arc<ReplicaSet>`. A record whose *apply* faults (replica disk hiccup)
//! stays queued — persisted in the follower log and retried by the next
//! shipping pass through the exactly-once gate — so a transient EIO delays
//! convergence instead of wedging or re-replaying the stream.
//!
//! Convergence is observable: [`ReplicaSet::status`] reports each
//! replica's shipped and applied (generation, records), and
//! [`ReplicaSet::converged`] compares them against the leader's WAL
//! position. Two engines at the same applied position hold byte-identical
//! postings — the bit-equality `tests/sharded_equivalence.rs` pins.
//!
//! # Background shipping with a lag SLO
//!
//! [`ReplicationController::spawn`] owns [`ReplicaSet::ship`] on a cadence
//! ([`ReplicationConfig::poll_interval`]): ship faults are retried with
//! exponential backoff (capped at [`ReplicationConfig::max_backoff`]; a
//! kick bypasses the backoff, so a healed disk re-converges immediately
//! under [`ReplicationController::run_now`]), per-replica lag against the
//! leader is observable ([`ReplicationController::lag`]), and crossing
//! [`ReplicationConfig::lag_slo_records`] surfaces an **edge-triggered**
//! typed [`ReplicationEvent::SloBreached`] (with a matching
//! [`ReplicationEvent::SloRecovered`] when the replica catches back up).
//! `run_now()` is the deterministic test hook; shutdown is clean (the
//! in-flight pass finishes, then the thread joins).
//!
//! # Checkpoints: ship before rotate
//!
//! A leader checkpoint rotates its WAL (new generation, records reset)
//! once every record is folded into the snapshot. Records of the retiring
//! generation that were never shipped would be lost to followers, so
//! [`ReplicaSet::checkpoint_leader`] drains the tail to every follower
//! *first*, then saves. Followers observe the rotation as a generation
//! change on the next shipped batch and reset their local log.
//!
//! # Fenced failover
//!
//! When a leader dies (or is partitioned away), [`ReplicaSet::promote`]
//! turns a follower into a leader — **with a fence**. Promotion bumps the
//! fleet's fence epoch, persists it in the promoted follower log's header
//! ([`streach_storage::FollowerLog::set_epoch`]), and fences the deposed
//! leader's WAL handle ([`streach_storage::Wal::fence`]) *before* the new
//! leader accepts its first write: any later append or fsync on the old
//! leader fails with a typed [`StorageError::Fenced`] before the record
//! could be acked. A partitioned-but-alive old leader therefore rejects
//! writes loudly instead of silently diverging from the promoted fleet —
//! no out-of-band "the leader is really gone" guarantee needed. The
//! promoted engine attaches its own follower log (a byte-compatible WAL
//! whose applied prefix is recorded in the engine) and replays nothing
//! when it was converged, exactly the shipped-but-unapplied suffix
//! otherwise. The remaining set is retired: further shipping reports the
//! fence instead of feeding replicas from a deposed leader's log.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use streach_storage::{FollowerLog, ShippedBatch, StorageError, StorageResult, WalTail};

use crate::engine::ReachabilityEngine;
use crate::ingest::WalAttach;

/// One follower: an engine applying shipped records plus its local
/// byte-compatible copy of the leader's WAL.
struct Follower {
    engine: Arc<ReachabilityEngine>,
    log: FollowerLog,
    /// Records persisted in the log but not yet applied — a faulted apply
    /// parks the suffix here and the next shipping pass retries it through
    /// the exactly-once gate (so nothing is lost and nothing re-replays).
    pending: VecDeque<(u64, u64, Vec<u8>)>,
}

impl Follower {
    /// Persists a polled batch (log frames + pending queue) **without**
    /// applying. Staging every follower before any apply runs means an
    /// apply fault on one follower can never lose the batch for another —
    /// the tail cursor only moves forward.
    fn accept(&mut self, batch: &ShippedBatch) -> StorageResult<()> {
        if batch.generation != self.log.generation() {
            // A generation change always starts at record 0 (the leader
            // rotated); anything else means this follower missed a
            // rotation's worth of records.
            if batch.start_record != 0 {
                return Err(StorageError::corrupt(format!(
                    "follower log at generation {} cannot accept generation {} \
                     starting mid-stream at record {}",
                    self.log.generation(),
                    batch.generation,
                    batch.start_record
                )));
            }
            if !self.pending.is_empty() {
                // The leader rotated while shipped records of the retiring
                // generation were still unapplied here (its checkpoint only
                // waits for its *own* applies). Dropping them would diverge
                // this replica silently; surface it instead.
                return Err(StorageError::corrupt(format!(
                    "leader rotated to generation {} while {} shipped records \
                     of generation {} were still unapplied on this follower",
                    batch.generation,
                    self.pending.len(),
                    self.log.generation()
                )));
            }
            self.log.reset(batch.generation)?;
        }
        self.log.append_shipped(batch)?;
        for (i, payload) in batch.payloads.iter().enumerate() {
            self.pending.push_back((
                batch.generation,
                batch.start_record + i as u64,
                payload.clone(),
            ));
        }
        Ok(())
    }

    /// Applies queued records in order through the exactly-once gate. On a
    /// fault the failing record stays at the front for the next pass.
    fn drain_pending(&mut self) -> StorageResult<()> {
        while let Some((generation, ordinal, payload)) = self.pending.front() {
            let record = crate::ingest::decode_record(payload)?;
            self.engine.apply_replicated(
                *generation,
                *ordinal,
                &record.points,
                record.prenormalized,
            )?;
            self.pending.pop_front();
        }
        Ok(())
    }
}

/// Observable replication state of one follower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaStatus {
    /// Generation of the follower's local log (the last shipped one).
    pub shipped_generation: u64,
    /// Records persisted in the follower's local log.
    pub shipped_records: u64,
    /// WAL generation the follower's engine has applied into.
    pub applied_generation: u64,
    /// Records of that generation the engine has applied (its offset).
    pub applied_records: u64,
}

impl ReplicaStatus {
    /// Records shipped to this follower but not yet applied by its engine.
    /// When shipped and applied generations disagree — the follower is
    /// mid-rotation, exactly when it is most behind — the true pending
    /// count is not derivable from the counters alone, so this reports the
    /// saturating conservative bound: every record of the shipped
    /// generation's log, and never less than 1 (the rotation itself is
    /// still pending), so a lagging follower can never read as converged.
    pub fn lag_records(&self) -> u64 {
        if self.shipped_generation == self.applied_generation {
            self.shipped_records.saturating_sub(self.applied_records)
        } else {
            self.shipped_records.max(1)
        }
    }
}

/// Interior state of a [`ReplicaSet`]: the shared tail cursor, the
/// followers, and the fence latch a promotion leaves behind.
struct Shipping {
    tail: WalTail,
    followers: Vec<Follower>,
    /// Set by [`ReplicaSet::promote`]: `(deposed epoch, promoted epoch)`.
    /// A retired set refuses to ship — its source log belongs to a deposed
    /// leader.
    retired: Option<(u64, u64)>,
}

/// A leader engine, its WAL tail, and the set of followers records are
/// shipped to. Shipping, status and checkpointing take `&self` (one
/// internal lock), so a background [`ReplicationController`], an explicit
/// checkpoint, and serving reads coexist on one `Arc<ReplicaSet>`; the
/// follower engines serve reads concurrently — apply goes through the same
/// ingest lock batch ingest takes.
pub struct ReplicaSet {
    leader: Arc<ReachabilityEngine>,
    shipping: Mutex<Shipping>,
}

impl ReplicaSet {
    /// Starts a replica set for `leader`, whose WAL lives at `leader_wal`
    /// (the path passed to [`ReachabilityEngine::attach_wal`]).
    pub fn new<P: AsRef<Path>>(leader: Arc<ReachabilityEngine>, leader_wal: P) -> Self {
        Self {
            leader,
            shipping: Mutex::new(Shipping {
                tail: WalTail::new(leader_wal),
                followers: Vec::new(),
                retired: None,
            }),
        }
    }

    /// The leader engine.
    pub fn leader(&self) -> &Arc<ReachabilityEngine> {
        &self.leader
    }

    /// Registers a follower and creates its local log at `log_path`.
    /// `engine` must be a replica of the leader's state — typically opened
    /// from a copy of the leader's snapshot
    /// ([`ReachabilityEngine::open_snapshot_standalone`] when the snapshot
    /// was saved self-contained) — and must **not** have a WAL attached
    /// (followers are read-only until promoted). Register followers before
    /// the first [`ReplicaSet::ship`] call (or right after a leader
    /// checkpoint): the tail cursor is shared, so records polled earlier
    /// are not re-shipped to late joiners.
    pub fn add_replica<P: AsRef<Path>>(
        &self,
        engine: Arc<ReachabilityEngine>,
        log_path: P,
    ) -> StorageResult<usize> {
        let (generation, _) = engine.wal_position();
        let log = FollowerLog::create(log_path, generation)?;
        let mut shipping = self.shipping.lock();
        shipping.followers.push(Follower {
            engine,
            log,
            pending: VecDeque::new(),
        });
        Ok(shipping.followers.len() - 1)
    }

    /// The follower engine registered as `index` (serving reads).
    pub fn replica(&self, index: usize) -> Arc<ReachabilityEngine> {
        Arc::clone(&self.shipping.lock().followers[index].engine)
    }

    /// Number of registered followers.
    pub fn num_replicas(&self) -> usize {
        self.shipping.lock().followers.len()
    }

    /// Polls the leader's WAL and ships every newly durable record to
    /// every follower: frames are persisted verbatim into each local log,
    /// then applied through the exactly-once replicated-apply gate.
    /// Returns the number of records shipped. A torn leader tail stops the
    /// batch early and is retried on the next call; a faulted *apply*
    /// leaves the record persisted-but-pending and the next call retries
    /// it (never re-reading it from the leader). After a promotion the set
    /// is retired and shipping fails with the typed fence error.
    pub fn ship(&self) -> StorageResult<u64> {
        let mut guard = self.shipping.lock();
        let shipping = &mut *guard;
        if let Some((epoch, required)) = shipping.retired {
            return Err(StorageError::Fenced { epoch, required });
        }
        // Retry records a faulted earlier pass left persisted-but-pending
        // before polling for new ones — order is everything here.
        for follower in &mut shipping.followers {
            follower.drain_pending()?;
        }
        let mut shipped = 0u64;
        while let Some(batch) = shipping.tail.poll()? {
            // Stage into every follower first, then apply: the tail cursor
            // has already moved past this batch, so every follower must
            // hold it before any apply is allowed to fault.
            for follower in &mut shipping.followers {
                follower.accept(&batch)?;
            }
            for follower in &mut shipping.followers {
                follower.drain_pending()?;
            }
            shipped += batch.payloads.len() as u64;
        }
        // A drained poll still latches a rotated header: when the leader
        // checkpointed and its fresh generation holds no records yet,
        // propagate the rotation so caught-up followers converge on the new
        // generation instead of reporting the retired one until the next
        // record arrives. Generations only move forward, so a tail that has
        // not latched onto the leader's log yet (generation 0) is ignored.
        let (tail_generation, tail_records) = shipping.tail.position();
        if tail_records == 0 {
            for follower in &mut shipping.followers {
                if follower.pending.is_empty() && tail_generation > follower.log.generation() {
                    follower.log.reset(tail_generation)?;
                    follower
                        .engine
                        .observe_replicated_rotation(tail_generation)?;
                }
            }
        }
        Ok(shipped)
    }

    /// Replication state of every follower, in registration order.
    pub fn status(&self) -> Vec<ReplicaStatus> {
        self.shipping
            .lock()
            .followers
            .iter()
            .map(|f| {
                let (applied_generation, applied_records) = f.engine.wal_position();
                ReplicaStatus {
                    shipped_generation: f.log.generation(),
                    shipped_records: f.log.records(),
                    applied_generation,
                    applied_records,
                }
            })
            .collect()
    }

    /// Per-follower lag **against the leader**, in records: how many
    /// records each follower's engine has yet to apply to reach the
    /// leader's WAL position. This is the SLO observable — unlike
    /// [`ReplicaStatus::lag_records`] (shipped vs applied), it also counts
    /// records the shipper has not even polled yet. A follower whose
    /// applied generation trails the leader's reports the saturating
    /// conservative bound (everything in the leader's current generation,
    /// never less than 1).
    pub fn leader_lag(&self) -> Vec<u64> {
        let (leader_generation, leader_applied) = self.leader.wal_position();
        self.shipping
            .lock()
            .followers
            .iter()
            .map(|f| {
                let (applied_generation, applied_records) = f.engine.wal_position();
                if applied_generation == leader_generation {
                    leader_applied.saturating_sub(applied_records)
                } else {
                    leader_applied.max(1)
                }
            })
            .collect()
    }

    /// `true` when every follower has applied exactly the leader's WAL
    /// position — at which point leader and followers answer every query
    /// bit-identically.
    pub fn converged(&self) -> bool {
        let (generation, applied) = self.leader.wal_position();
        self.status()
            .iter()
            .all(|s| s.applied_generation == generation && s.applied_records == applied)
    }

    /// Checkpoints the leader into `dir` with the **ship-before-rotate**
    /// protocol: first drains the WAL tail to every follower, then saves —
    /// the save may rotate the leader's WAL (retiring records followers
    /// could otherwise never receive). Incremental, so a periodic
    /// checkpoint of a serving leader stays cheap.
    pub fn checkpoint_leader<P: AsRef<Path>>(&self, dir: P) -> StorageResult<()> {
        self.ship()?;
        self.leader.save_incremental_snapshot(&dir)?;
        // The save may have rotated the leader's WAL; ship again so
        // followers observe the new (empty) generation right away instead
        // of on the next scheduled shipping round.
        self.ship()?;
        Ok(())
    }

    /// Fails over to follower `index` — **fenced**. The promotion:
    ///
    /// 1. bumps the fleet's fence epoch past the deposed leader's,
    /// 2. fences the old leader's WAL handle, so any write it still tries
    ///    to ack fails with a typed [`StorageError::Fenced`] from here on,
    /// 3. persists the new epoch in the follower log's header, and
    /// 4. attaches that log to the follower's engine, making it the
    ///    writable new leader at the new epoch.
    ///
    /// The follower's log is a byte-compatible WAL, so the attach replays
    /// exactly the shipped-but-unapplied suffix (nothing, for a converged
    /// follower). Call [`ReplicaSet::ship`] first if the old leader's WAL
    /// is still readable, to shrink the data-loss window to records the
    /// old leader never made durable.
    ///
    /// The set is **retired**: later [`ReplicaSet::ship`] calls fail with
    /// the fence error (the source log belongs to a deposed leader), and a
    /// second promotion is refused. Rebuild a [`ReplicaSet`] around the
    /// promoted engine to resume replication.
    pub fn promote(&self, index: usize) -> StorageResult<(Arc<ReachabilityEngine>, WalAttach)> {
        let mut shipping = self.shipping.lock();
        if let Some((epoch, required)) = shipping.retired {
            return Err(StorageError::Fenced { epoch, required });
        }
        let follower = shipping.followers.swap_remove(index);
        let Follower {
            engine,
            mut log,
            pending,
        } = follower;
        // Unapplied-but-shipped records are persisted in the log: the
        // attach below replays them, so the queue can simply go.
        drop(pending);
        let deposed_epoch = self
            .leader
            .wal_handle()
            .map(|wal| wal.epoch())
            .unwrap_or(0)
            .max(log.epoch());
        let promoted_epoch = deposed_epoch + 1;
        // Fence the deposed leader BEFORE the new leader can accept a
        // write: from this point the old leader cannot ack anything, so
        // there is no window in which both sides ack.
        if let Some(wal) = self.leader.wal_handle() {
            wal.fence(promoted_epoch);
        }
        shipping.retired = Some((deposed_epoch, promoted_epoch));
        log.set_epoch(promoted_epoch)?;
        let log_path = log.path().to_path_buf();
        // Close our handle before the engine reopens the file as its WAL.
        drop(log);
        let attach = engine.attach_wal(&log_path)?;
        Ok((engine, attach))
    }
}

/// Tuning for the background [`ReplicationController`].
#[derive(Debug, Clone)]
pub struct ReplicationConfig {
    /// Cadence of shipping passes when nothing kicks the worker.
    pub poll_interval: Duration,
    /// Per-replica lag (records behind the leader, see
    /// [`ReplicaSet::leader_lag`]) above which an edge-triggered
    /// [`ReplicationEvent::SloBreached`] fires. 0 disables the check.
    pub lag_slo_records: u64,
    /// First retry delay after a failed shipping pass; doubles per
    /// consecutive failure. A kick ([`ReplicationController::run_now`])
    /// bypasses the backoff.
    pub retry_backoff: Duration,
    /// Ceiling for the failure backoff.
    pub max_backoff: Duration,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self {
            poll_interval: Duration::from_millis(100),
            lag_slo_records: 512,
            retry_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
        }
    }
}

/// Typed events the background shipping worker surfaces (drain with
/// [`ReplicationController::take_events`]).
#[derive(Debug, Clone)]
pub enum ReplicationEvent {
    /// A shipping pass failed; the worker retries with backoff.
    ShipFailed {
        /// Rendered error of the failed pass.
        error: String,
        /// Failed passes since the last success (this one included).
        consecutive_failures: u64,
    },
    /// A replica's lag against the leader crossed the configured SLO.
    /// Edge-triggered: fires once per excursion, not once per pass.
    SloBreached {
        /// Index of the replica in registration order.
        replica: usize,
        /// Its lag, in records behind the leader, when the breach fired.
        lag_records: u64,
        /// The configured [`ReplicationConfig::lag_slo_records`].
        slo_records: u64,
    },
    /// A previously breached replica caught back up under the SLO.
    SloRecovered {
        /// Index of the replica in registration order.
        replica: usize,
        /// Its lag when it recovered.
        lag_records: u64,
    },
    /// The set was retired by a promotion: the worker stops shipping (the
    /// source log belongs to a deposed leader) and parks.
    Fenced {
        /// The deposed leader's fence epoch.
        epoch: u64,
        /// The promoted leader's fence epoch.
        required: u64,
    },
}

/// Activity counters of a [`ReplicationController`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Shipping passes completed (successful or not).
    pub passes: u64,
    /// Records shipped to every follower in total.
    pub records_shipped: u64,
    /// Shipping passes that failed.
    pub ship_errors: u64,
    /// SLO breach events fired (edge-triggered excursions, not passes).
    pub slo_breaches: u64,
}

struct ReplWorkerState {
    stop: bool,
    kicks_requested: u64,
    kicks_served: u64,
    stats: ReplicationStats,
    events: Vec<ReplicationEvent>,
    consecutive_failures: u64,
    /// Per-replica latched breach flag — the SLO events edge-trigger.
    breached: Vec<bool>,
    /// The set was retired by a promotion; passes become no-ops.
    retired: bool,
}

struct ReplShared {
    set: Arc<ReplicaSet>,
    config: ReplicationConfig,
    state: StdMutex<ReplWorkerState>,
    cv: Condvar,
}

impl ReplShared {
    fn lock(&self) -> StdMutexGuard<'_, ReplWorkerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Owns background WAL shipping for one [`ReplicaSet`]: a
/// [`MaintenanceController`](crate::maintenance::MaintenanceController)-
/// style worker calls [`ReplicaSet::ship`] on a cadence, retries faults
/// with exponential backoff, watches per-replica lag against a configured
/// SLO, and surfaces everything as typed [`ReplicationEvent`]s. Dropping
/// the controller (or calling [`ReplicationController::shutdown`]) stops
/// the worker cleanly: the in-flight pass finishes, then the thread joins.
pub struct ReplicationController {
    shared: Arc<ReplShared>,
    worker: Option<JoinHandle<()>>,
}

impl ReplicationController {
    /// Spawns the background shipping worker over `set`.
    pub fn spawn(set: Arc<ReplicaSet>, config: ReplicationConfig) -> Self {
        let replicas = set.num_replicas();
        let shared = Arc::new(ReplShared {
            set,
            config,
            state: StdMutex::new(ReplWorkerState {
                stop: false,
                kicks_requested: 0,
                kicks_served: 0,
                stats: ReplicationStats::default(),
                events: Vec::new(),
                consecutive_failures: 0,
                breached: vec![false; replicas],
                retired: false,
            }),
            cv: Condvar::new(),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("streach-replication".into())
                .spawn(move || Self::worker_loop(&shared))
                .expect("spawn replication worker")
        };
        Self {
            shared,
            worker: Some(worker),
        }
    }

    /// Idle wait before the next pass: the poll cadence, stretched by the
    /// failure backoff (doubled per consecutive failure, capped). Kicks
    /// bypass it via the condvar.
    fn wait_for(config: &ReplicationConfig, consecutive_failures: u64) -> Duration {
        if consecutive_failures == 0 {
            return config.poll_interval;
        }
        let factor = 1u32 << consecutive_failures.min(16) as u32;
        config
            .retry_backoff
            .saturating_mul(factor)
            .min(config.max_backoff)
            .max(config.poll_interval)
    }

    fn worker_loop(shared: &ReplShared) {
        loop {
            // Wait for a kick, the poll cadence (stretched by the failure
            // backoff), or shutdown.
            let serving = {
                let mut state = shared.lock();
                loop {
                    if state.stop {
                        return;
                    }
                    if state.kicks_requested > state.kicks_served {
                        break state.kicks_requested;
                    }
                    let wait = Self::wait_for(&shared.config, state.consecutive_failures);
                    let (guard, timeout) = shared
                        .cv
                        .wait_timeout(state, wait)
                        .unwrap_or_else(|e| e.into_inner());
                    state = guard;
                    if timeout.timed_out() {
                        break state.kicks_requested;
                    }
                }
            };
            Self::run_pass(shared);
            let mut state = shared.lock();
            state.kicks_served = state.kicks_served.max(serving);
            state.stats.passes += 1;
            shared.cv.notify_all();
        }
    }

    /// One shipping pass: ship, classify the outcome, then re-check every
    /// replica's lag against the SLO. Errors are recorded as events, never
    /// propagated — the worker retries with backoff (or parks, once the
    /// set is retired by a promotion).
    fn run_pass(shared: &ReplShared) {
        let retired = shared.lock().retired;
        if !retired {
            match shared.set.ship() {
                Ok(shipped) => {
                    let mut state = shared.lock();
                    state.stats.records_shipped += shipped;
                    state.consecutive_failures = 0;
                }
                Err(StorageError::Fenced { epoch, required }) => {
                    let mut state = shared.lock();
                    state.retired = true;
                    state
                        .events
                        .push(ReplicationEvent::Fenced { epoch, required });
                }
                Err(error) => {
                    let mut state = shared.lock();
                    state.stats.ship_errors += 1;
                    state.consecutive_failures += 1;
                    let consecutive_failures = state.consecutive_failures;
                    state.events.push(ReplicationEvent::ShipFailed {
                        error: error.to_string(),
                        consecutive_failures,
                    });
                }
            }
        }

        let lags = shared.set.leader_lag();
        let slo = shared.config.lag_slo_records;
        if slo == 0 {
            return;
        }
        let mut state = shared.lock();
        if state.breached.len() < lags.len() {
            state.breached.resize(lags.len(), false);
        }
        for (replica, &lag_records) in lags.iter().enumerate() {
            if lag_records > slo && !state.breached[replica] {
                state.breached[replica] = true;
                state.stats.slo_breaches += 1;
                state.events.push(ReplicationEvent::SloBreached {
                    replica,
                    lag_records,
                    slo_records: slo,
                });
            } else if lag_records <= slo && state.breached[replica] {
                state.breached[replica] = false;
                state.events.push(ReplicationEvent::SloRecovered {
                    replica,
                    lag_records,
                });
            }
        }
    }

    /// Wakes the worker for an immediate shipping pass without waiting for
    /// it. Bypasses any failure backoff in progress.
    pub fn kick(&self) {
        let mut state = self.shared.lock();
        state.kicks_requested += 1;
        self.shared.cv.notify_all();
    }

    /// Kicks the worker and blocks until that pass has completed — the
    /// deterministic hook: after `run_now` returns, every record durable
    /// in the leader's WAL before the call has been shipped and applied to
    /// every reachable follower (or the failure is recorded as an event).
    pub fn run_now(&self) {
        let mut state = self.shared.lock();
        state.kicks_requested += 1;
        let ticket = state.kicks_requested;
        self.shared.cv.notify_all();
        while state.kicks_served < ticket {
            state = self
                .shared
                .cv
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Activity counters so far.
    pub fn stats(&self) -> ReplicationStats {
        self.shared.lock().stats
    }

    /// Per-replica lag against the leader right now (see
    /// [`ReplicaSet::leader_lag`]).
    pub fn lag(&self) -> Vec<u64> {
        self.shared.set.leader_lag()
    }

    /// Drains the recorded events (oldest first).
    pub fn take_events(&self) -> Vec<ReplicationEvent> {
        std::mem::take(&mut self.shared.lock().events)
    }

    /// The replica set this controller ships for.
    pub fn set(&self) -> &Arc<ReplicaSet> {
        &self.shared.set
    }

    fn stop_and_join(&mut self) {
        {
            let mut state = self.shared.lock();
            state.stop = true;
            self.shared.cv.notify_all();
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }

    /// Stops the worker (the in-flight pass finishes), joins the thread,
    /// and returns any undrained events.
    pub fn shutdown(mut self) -> Vec<ReplicationEvent> {
        self.stop_and_join();
        std::mem::take(&mut self.shared.lock().events)
    }
}

impl Drop for ReplicationController {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use crate::config::IndexConfig;
    use crate::query::{Algorithm, SQuery};
    use streach_roadnet::{GeneratorConfig, SegmentId, SyntheticCity};
    use streach_traj::{FleetConfig, TrajPoint, TrajectoryDataset};

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("streach-replicate-{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn copy_dir(src: &Path, dst: &Path) {
        std::fs::create_dir_all(dst).unwrap();
        for entry in std::fs::read_dir(src).unwrap().flatten() {
            if entry.file_type().unwrap().is_file() {
                std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
            }
        }
    }

    /// The mid-rotation lag fix: a follower whose applied generation
    /// trails its shipped generation must never read as converged — it is
    /// exactly when it is most behind.
    #[test]
    fn lag_records_reports_a_conservative_bound_mid_rotation() {
        // Same generation: the plain difference.
        let aligned = ReplicaStatus {
            shipped_generation: 2,
            shipped_records: 9,
            applied_generation: 2,
            applied_records: 4,
        };
        assert_eq!(aligned.lag_records(), 5);
        // Mid-rotation with records already shipped into the new log:
        // every one of them may be unapplied.
        let rotating = ReplicaStatus {
            shipped_generation: 2,
            shipped_records: 5,
            applied_generation: 1,
            applied_records: 7,
        };
        assert_eq!(
            rotating.lag_records(),
            5,
            "records of the new generation's log are all potentially pending"
        );
        // Mid-rotation with an empty new log: the rotation itself is still
        // pending — never 0.
        let fresh = ReplicaStatus {
            shipped_generation: 2,
            shipped_records: 0,
            applied_generation: 1,
            applied_records: 7,
        };
        assert!(
            fresh.lag_records() >= 1,
            "a mid-rotation follower must not report converged"
        );
        // Converged is still 0.
        let converged = ReplicaStatus {
            shipped_generation: 3,
            shipped_records: 6,
            applied_generation: 3,
            applied_records: 6,
        };
        assert_eq!(converged.lag_records(), 0);
    }

    #[test]
    fn shipped_replica_converges_and_answers_identically() {
        let root = tmp_dir("converge");
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig {
                num_taxis: 8,
                num_days: 2,
                ..FleetConfig::tiny()
            },
        );
        let leader = Arc::new(
            EngineBuilder::new(network.clone(), &dataset)
                .index_config(IndexConfig {
                    read_latency_us: 0,
                    ..IndexConfig::default()
                })
                .build(),
        );
        leader
            .save_snapshot_self_contained(root.join("leader"))
            .unwrap();
        leader
            .attach_wal(root.join("leader").join("ingest.wal"))
            .unwrap();

        // Bootstrap a replica from shipped artifacts alone.
        copy_dir(&root.join("leader"), &root.join("replica"));
        let _ = std::fs::remove_file(root.join("replica").join("ingest.wal"));
        let replica =
            Arc::new(ReachabilityEngine::open_snapshot_standalone(root.join("replica")).unwrap());

        let set = ReplicaSet::new(leader.clone(), root.join("leader").join("ingest.wal"));
        set.add_replica(replica.clone(), root.join("replica").join("follower.wal"))
            .unwrap();

        // Ingest at the leader, ship, and compare.
        let points: Vec<TrajPoint> = (0..20)
            .map(|i| TrajPoint {
                traj_id: 1000 + i % 3,
                date: 1,
                segment: SegmentId((i * 7) % network.num_segments() as u32),
                enter_time_s: 9 * 3600 + i * 45,
            })
            .collect();
        leader.ingest(&points).unwrap();
        assert!(!set.converged());
        let shipped = set.ship().unwrap();
        assert!(shipped > 0);
        assert!(set.converged());
        let status = &set.status()[0];
        assert_eq!(status.lag_records(), 0);
        assert_eq!(set.leader_lag(), vec![0]);

        let query = SQuery {
            location: network.bounds().center(),
            start_time_s: 9 * 3600,
            duration_s: 600,
            prob: 0.2,
        };
        let want = leader.try_s_query(&query, Algorithm::SqmbTbs).unwrap();
        let got = replica.try_s_query(&query, Algorithm::SqmbTbs).unwrap();
        assert_eq!(want.region, got.region);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn checkpoint_ships_before_rotating_and_followers_track_generations() {
        let root = tmp_dir("rotate");
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig {
                num_taxis: 6,
                num_days: 2,
                ..FleetConfig::tiny()
            },
        );
        let leader = Arc::new(
            EngineBuilder::new(network.clone(), &dataset)
                .index_config(IndexConfig {
                    read_latency_us: 0,
                    ..IndexConfig::default()
                })
                .build(),
        );
        let home = root.join("leader");
        leader.save_snapshot_self_contained(&home).unwrap();
        leader.attach_wal(home.join("ingest.wal")).unwrap();

        copy_dir(&home, &root.join("replica"));
        let _ = std::fs::remove_file(root.join("replica").join("ingest.wal"));
        let replica =
            Arc::new(ReachabilityEngine::open_snapshot_standalone(root.join("replica")).unwrap());
        let set = ReplicaSet::new(leader.clone(), home.join("ingest.wal"));
        set.add_replica(replica.clone(), root.join("replica").join("follower.wal"))
            .unwrap();

        let batch = |base: u32| -> Vec<TrajPoint> {
            (0..5)
                .map(|i| TrajPoint {
                    traj_id: 500 + i,
                    date: 1,
                    segment: SegmentId((base + i * 11) % network.num_segments() as u32),
                    enter_time_s: 10 * 3600 + (base + i) * 30,
                })
                .collect()
        };
        leader.ingest(&batch(0)).unwrap();
        // The checkpoint drains the tail first, then rotates the WAL.
        set.checkpoint_leader(&home).unwrap();
        assert!(set.converged());
        let gen_after_rotate = leader.wal_position().0;
        assert!(gen_after_rotate > 0, "home checkpoint rotates the WAL");

        // Records of the new generation ship too; the follower log resets.
        leader.ingest(&batch(100)).unwrap();
        set.ship().unwrap();
        assert!(set.converged());
        let status = &set.status()[0];
        assert_eq!(status.shipped_generation, gen_after_rotate);
        assert_eq!(status.applied_generation, gen_after_rotate);

        let query = SQuery {
            location: network.bounds().center(),
            start_time_s: 10 * 3600,
            duration_s: 600,
            prob: 0.2,
        };
        let want = leader.try_s_query(&query, Algorithm::SqmbTbs).unwrap();
        let got = replica.try_s_query(&query, Algorithm::SqmbTbs).unwrap();
        assert_eq!(want.region, got.region);

        // Promotion: the converged follower becomes a writable leader —
        // and the deposed leader is fenced.
        let (promoted, attach) = set.promote(0).unwrap();
        assert_eq!(
            attach.records_replayed, 0,
            "converged follower replays nothing"
        );
        promoted.ingest(&batch(200)).unwrap();
        let err = leader.ingest(&batch(300)).unwrap_err();
        assert!(
            matches!(err, StorageError::Fenced { .. }),
            "deposed leader must fail typed: {err}"
        );
        // The retired set refuses to ship or promote again.
        assert!(matches!(set.ship(), Err(StorageError::Fenced { .. })));
        let _ = std::fs::remove_dir_all(&root);
    }
}
