//! Spatially sharded serving: a scatter-gather router over per-shard
//! engines and their read replicas.
//!
//! # Design: postings sharded, statistics led
//!
//! A [`ShardedEngine`] splits the road network into `K` spatial shards
//! with a deterministic k-d cut ([`streach_roadnet::ShardMap::partition`])
//! and serves each shard from a **shard engine** — a full
//! [`ReachabilityEngine`] over the full network whose ST-Index holds only
//! the postings of segments the shard owns (see
//! [`crate::builder::EngineBuilder::shard`]). Everything *else* — the
//! Con-Index speed statistics, the day count, the last-visit table — is
//! maintained over the full data stream by the **statistics leader**
//! (shard 0's leader): at build time every shard engine computes them over
//! the full dataset, and streaming ingest keeps them current on the
//! statistics leader only, which is the single engine every router query
//! path reads them from ([`ShardedEngine`]'s `reference`). Ingest is
//! **owner-routed**: the statistics leader ingests the raw batch and the
//! other shards receive just their owned, pre-normalized slice (see
//! [`ShardedEngine::ingest`]). The consequences:
//!
//! * **Bounding is local.** SQMB/MQMB only touch the statistics leader's
//!   Con-Index, which sees the full stream and therefore produces the
//!   exact bounding regions a single engine would — no cross-shard
//!   coordination before verification.
//! * **Verification is routed.** Each `(segment, slot)` posting read in
//!   the verify sweep is answered by the shard owning that segment
//!   ([`RoutedPostings`], a [`PostingSource`]). An s-query whose annulus
//!   lies inside one shard reads one engine; a query whose reachable
//!   annulus straddles a boundary fans out across shards *inside the
//!   existing `streach_par` parallel sweep* — scatter-gather without a
//!   second merge pass, because every segment is verified exactly once
//!   against the byte-identical posting the single engine holds.
//! * **Answers are bit-identical.** The final region is assembled by the
//!   same generic pipeline code ([`crate::query::tbs`],
//!   [`crate::query::es`], [`crate::query::mqmb`]) a single engine runs —
//!   same bounding, same postings, same sort — so sharded answers equal
//!   single-engine answers bit for bit (pinned by
//!   `tests/sharded_equivalence.rs`).
//!
//! MQMB m-queries run **one** unified bounding over the replicated
//! statistics, then group the per-start posting work by owning shard
//! implicitly through the router — each start's core construction and each
//! annulus segment's verification read exactly the owning shard's heap.
//!
//! # Replica failover and probation revival
//!
//! Each shard serves reads from an ordered list of engines: the leader
//! plus any replicas registered with [`ShardedEngine::add_replica`]
//! (typically WAL-shipped followers, see [`crate::replicate`]). A posting
//! read tries the list in preference order; an engine whose store faults
//! is **marked dead** and skipped, and the read fails over to the next
//! engine — converged replicas hold byte-identical postings, so the
//! answer is unchanged.
//!
//! Dead is a *probation*, not a life sentence: every routed read ticks a
//! skip counter on **every** dead engine in the try-order — the ones
//! passed over before the serving engine and the ones behind it (an
//! engine behind a healthy one would otherwise never be reconsidered and
//! a transient fault would be a permanent capacity loss). Every
//! [`PROBATION_READS`]-th tick re-probes that engine with the actual
//! posting read. A healed engine (transient fault, remounted disk,
//! restarted host) serves the probe and is revived on the spot; a
//! still-broken one pays one failed read per probation window and stays
//! dead. Either way the bytes returned to the caller come entirely from
//! one engine (a behind-the-server probe reads into a scratch buffer), so
//! the "never a partial region" guarantee is untouched. When every engine
//! of a shard is dead (and no probe heals one) the read surfaces a typed
//! [`StorageError`] that reaches the caller as [`QueryError::Storage`]:
//! a partial region is never returned.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use streach_roadnet::{RoadNetwork, SegmentId, ShardMap};
use streach_storage::{IoStats, IoStatsSnapshot, PostingEncoding, StorageError, StorageResult};

use crate::engine::ReachabilityEngine;
use crate::query::es::exhaustive_search;
use crate::query::mqmb::{mqmb, mqmb_trace_back};
use crate::query::sqmb::sqmb;
use crate::query::tbs::trace_back_search;
use crate::query::verifier::{PostingSource, VerifierCore};
use crate::query::{Algorithm, MQuery, MQueryAlgorithm, QueryError, QueryOutcome, SQuery};
use crate::region::ReachableRegion;
use crate::stats::QueryStats;

/// Which engine of a shard's serving list answers posting reads first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPreference {
    /// Read from the shard leader; fail over to replicas when it dies.
    #[default]
    Leader,
    /// Read from replicas (in registration order) and keep the leader as
    /// the last resort — offloads query I/O from the ingest path.
    ReplicaFirst,
}

/// How many reads skip a dead engine before one read re-probes it.
///
/// Low enough that a healed engine rejoins within one query's annulus
/// sweep, high enough that a hard-down engine costs one failed read per
/// window instead of one per read (which would undo the point of marking
/// it dead).
pub const PROBATION_READS: u64 = 64;

/// One engine in a shard's serving list plus its liveness state.
struct ServingEntry {
    engine: Arc<ReachabilityEngine>,
    /// Set on a storage fault; a dead engine is skipped cheaply and
    /// re-probed every [`PROBATION_READS`]-th skip — a successful probe
    /// revives it (see the module docs).
    dead: AtomicBool,
    /// Reads that skipped this engine since it was marked dead.
    skipped: AtomicU64,
}

impl ServingEntry {
    fn new(engine: Arc<ReachabilityEngine>) -> Self {
        Self {
            engine,
            dead: AtomicBool::new(false),
            skipped: AtomicU64::new(0),
        }
    }
}

/// The ordered serving list of one shard: leader first, replicas after.
struct ShardServing {
    entries: Vec<ServingEntry>,
}

impl ShardServing {
    /// Routed posting read with failover: tries every live engine in
    /// `order`, marks the ones that fault dead, and periodically re-probes
    /// dead ones so a healed engine rejoins the rotation.
    fn read_time_list_into(
        &self,
        shard_id: u16,
        order: impl Iterator<Item = usize>,
        segment: SegmentId,
        slot: u32,
        buf: &mut Vec<u8>,
    ) -> StorageResult<bool> {
        let mut last_err = None;
        let mut order = order;
        while let Some(idx) = order.next() {
            let entry = &self.entries[idx];
            let was_dead = entry.dead.load(Ordering::Relaxed);
            if was_dead {
                // Probation: skip the dead engine cheaply, except every
                // PROBATION_READS-th skip, which re-probes it with the
                // actual read below.
                let skipped = entry.skipped.fetch_add(1, Ordering::Relaxed) + 1;
                if !skipped.is_multiple_of(PROBATION_READS) {
                    continue;
                }
            }
            match PostingSource::read_time_list_into(entry.engine.st_index(), segment, slot, buf) {
                Ok(found) => {
                    if was_dead {
                        // The probe succeeded: the engine healed. Revive it
                        // for subsequent reads; this read was served wholly
                        // by it, so the answer stays bit-identical.
                        entry.skipped.store(0, Ordering::Relaxed);
                        entry.dead.store(false, Ordering::Relaxed);
                    }
                    // Tick probation for the dead engines this read never
                    // reached: an engine behind a healthy one in the
                    // preference order would otherwise never accumulate
                    // skips and stay dead forever after healing. The probe
                    // reads into a scratch buffer — the answer returned to
                    // the caller was served wholly by `idx`.
                    for behind in order {
                        let entry = &self.entries[behind];
                        if !entry.dead.load(Ordering::Relaxed) {
                            continue;
                        }
                        let skipped = entry.skipped.fetch_add(1, Ordering::Relaxed) + 1;
                        if !skipped.is_multiple_of(PROBATION_READS) {
                            continue;
                        }
                        let mut scratch = Vec::new();
                        if PostingSource::read_time_list_into(
                            entry.engine.st_index(),
                            segment,
                            slot,
                            &mut scratch,
                        )
                        .is_ok()
                        {
                            entry.skipped.store(0, Ordering::Relaxed);
                            entry.dead.store(false, Ordering::Relaxed);
                        }
                    }
                    return Ok(found);
                }
                Err(err) => {
                    entry.dead.store(true, Ordering::Relaxed);
                    last_err = Some(err);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            StorageError::corrupt(format!(
                "shard {shard_id} has no live engine left to serve posting reads \
                 (leader and every replica are marked dead)"
            ))
        }))
    }

    fn live(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| !e.dead.load(Ordering::Relaxed))
            .count()
    }
}

/// A scatter-gather router over `K` shard engines (plus optional read
/// replicas per shard) that answers every query pipeline bit-identically
/// to a single unsharded engine. See the module docs for the design.
pub struct ShardedEngine {
    network: Arc<RoadNetwork>,
    map: Arc<ShardMap>,
    shards: Vec<ShardServing>,
    preference: ReadPreference,
    /// Router-level posting-decode accounting; page reads/hits land in the
    /// individual engines' counters and are aggregated per query.
    io: Arc<IoStats>,
    /// Serializes routed ingest: batch N+1's normalization on the
    /// statistics leader must observe batch N's last-visit state, and the
    /// owner-routed sub-batches must land on the other shards in the same
    /// order the leader logged the full batches — otherwise a shard's WAL
    /// replay could interleave differently from its live application.
    route: Mutex<()>,
}

impl ShardedEngine {
    /// Assembles a router from one **leader** engine per shard, in shard-id
    /// order. Each leader must have been built (or reopened) with the
    /// matching shard ownership — [`crate::builder::EngineBuilder::shard`]
    /// with this exact `map` and its position's shard id.
    ///
    /// # Panics
    /// Panics on a topology error: wrong leader count, a leader without
    /// shard ownership, or ownership disagreeing with `map` — these are
    /// deployment bugs, not runtime conditions.
    pub fn new(map: Arc<ShardMap>, leaders: Vec<Arc<ReachabilityEngine>>) -> Self {
        assert_eq!(
            leaders.len(),
            map.num_shards() as usize,
            "need exactly one leader per shard"
        );
        let network = leaders
            .first()
            .expect("a sharded engine needs at least one shard")
            .network()
            .clone();
        for (shard_id, leader) in leaders.iter().enumerate() {
            let (owned_map, owned_id) = leader
                .shard_ownership()
                .expect("every shard leader must carry shard ownership");
            assert_eq!(
                owned_id, shard_id as u16,
                "leader #{shard_id} owns shard {owned_id}"
            );
            assert_eq!(
                owned_map.as_ref(),
                map.as_ref(),
                "leader #{shard_id} was partitioned with a different shard map"
            );
        }
        let shards = leaders
            .into_iter()
            .map(|engine| ShardServing {
                entries: vec![ServingEntry::new(engine)],
            })
            .collect();
        Self {
            network,
            map,
            shards,
            preference: ReadPreference::Leader,
            io: Arc::new(IoStats::default()),
            route: Mutex::new(()),
        }
    }

    /// Registers a read replica for `shard_id`, appended to the shard's
    /// failover order. The replica must serve the same shard's postings —
    /// typically a WAL-shipped follower of that shard's leader
    /// ([`crate::replicate::ReplicaSet`]); a converged follower holds
    /// byte-identical postings, which is what keeps failover answers
    /// bit-identical.
    ///
    /// # Panics
    /// Panics when `shard_id` is out of range or the replica's shard
    /// ownership disagrees with the router's map.
    pub fn add_replica(&mut self, shard_id: u16, engine: Arc<ReachabilityEngine>) {
        let (owned_map, owned_id) = engine
            .shard_ownership()
            .expect("a replica must carry shard ownership");
        assert_eq!(owned_id, shard_id, "replica owns shard {owned_id}");
        assert_eq!(
            owned_map.as_ref(),
            self.map.as_ref(),
            "replica was partitioned with a different shard map"
        );
        self.shards[shard_id as usize]
            .entries
            .push(ServingEntry::new(engine));
    }

    /// Replaces a shard's leader — the engine owner-routed ingest lands on
    /// and the first read candidate under leader preference — with
    /// `engine`, typically a replica just promoted through
    /// [`ReplicaSet::promote`](crate::replicate::ReplicaSet::promote). The
    /// deposed leader's entry is dropped from serving entirely (a fenced
    /// leader cannot even serve stale reads safely once writes resume
    /// elsewhere); replicas registered with
    /// [`ShardedEngine::add_replica`] stay in place.
    ///
    /// # Panics
    /// Panics when `shard_id` is out of range or the engine's shard
    /// ownership disagrees with the router's map.
    pub fn install_leader(&mut self, shard_id: u16, engine: Arc<ReachabilityEngine>) {
        let (owned_map, owned_id) = engine
            .shard_ownership()
            .expect("a leader must carry shard ownership");
        assert_eq!(owned_id, shard_id, "engine owns shard {owned_id}");
        assert_eq!(
            owned_map.as_ref(),
            self.map.as_ref(),
            "engine was partitioned with a different shard map"
        );
        self.shards[shard_id as usize].entries[0] = ServingEntry::new(engine);
    }

    /// Sets which engine of each shard answers posting reads first.
    pub fn set_read_preference(&mut self, preference: ReadPreference) {
        self.preference = preference;
    }

    /// The shard map queries are routed with.
    pub fn shard_map(&self) -> &Arc<ShardMap> {
        &self.map
    }

    /// Number of spatial shards.
    pub fn num_shards(&self) -> u16 {
        self.map.num_shards()
    }

    /// The shard owning `segment`'s postings.
    pub fn route_of(&self, segment: SegmentId) -> u16 {
        self.map.shard_of(segment)
    }

    /// Number of engines of `shard_id` not yet marked dead (leader +
    /// replicas).
    pub fn live_engines(&self, shard_id: u16) -> usize {
        self.shards[shard_id as usize].live()
    }

    /// The statistics leader: the engine answering everything
    /// non-posting — bounding (Con-Index), location matching and index
    /// scalars. Shard 0's leader by convention; it is the one engine whose
    /// statistics streaming ingest keeps current over the full stream
    /// (see [`ShardedEngine::ingest`]).
    fn reference(&self) -> &ReachabilityEngine {
        &self.shards[0].entries[0].engine
    }

    /// The failover try-order for one shard's serving list of `n` engines.
    fn order(&self, n: usize) -> impl Iterator<Item = usize> {
        let replica_first = self.preference == ReadPreference::ReplicaFirst;
        (0..n).map(move |i| if replica_first { (i + 1) % n } else { i })
    }

    /// Sum of the per-engine I/O counters plus the router's decode
    /// accounting — the aggregate a sharded query reports I/O deltas over.
    fn io_snapshot(&self) -> IoStatsSnapshot {
        let mut total = self.io.snapshot();
        for shard in &self.shards {
            for entry in &shard.entries {
                let s = entry.engine.st_index().io_stats().snapshot();
                total.page_reads += s.page_reads;
                total.page_writes += s.page_writes;
                total.cache_hits += s.cache_hits;
                total.cache_misses += s.cache_misses;
                total.bytes_decoded += s.bytes_decoded;
                total.bytes_resident += s.bytes_resident;
            }
        }
        total
    }

    /// Ingests a batch by **owner-routing** it across the shard leaders.
    ///
    /// The statistics leader (shard 0) ingests the raw full batch — it
    /// alone normalizes the stream, derives the speed pairs, raises the day
    /// count and maintains the last-visit table, so every statistic the
    /// router's query paths read through [`ShardedEngine::reference`] stays
    /// bit-identical to a single engine's. The normalized point sequence it
    /// produces is then split by owning shard, and each other leader
    /// receives only its owned points as a **pre-normalized** WAL record
    /// (applied postings-only; see
    /// [`crate::ingest`]'s `WAL_BATCH_TAG_PRENORMALIZED`). A shard whose
    /// sub-batch is empty does zero work — no WAL record, no fsync, no
    /// observer wakeup — so per-shard [`crate::ingest::IngestTouch`]es
    /// report only locally-touched pairs and subscription wakeups do not
    /// fan out needlessly. WAL write amplification drops from ×K full
    /// copies to one full copy plus each shard's owned slice.
    ///
    /// Outcomes are in shard order; shard 0's covers the full batch, the
    /// others cover their owned slices. On an error the shards before the
    /// failing one have already applied their slice: recover the failed
    /// shard from its WAL/snapshot rather than re-ingesting the batch.
    pub fn ingest(
        &self,
        points: &[streach_traj::TrajPoint],
    ) -> StorageResult<Vec<crate::ingest::IngestOutcome>> {
        let _route = self.route.lock();
        let mut outcomes = Vec::with_capacity(self.shards.len());
        let (outcome, normalized) = self.shards[0].entries[0].engine.ingest_capturing(points)?;
        outcomes.push(outcome);
        for (shard_id, shard) in self.shards.iter().enumerate().skip(1) {
            let owned: Vec<streach_traj::TrajPoint> = normalized
                .iter()
                .filter(|p| self.map.shard_of(p.segment) == shard_id as u16)
                .copied()
                .collect();
            if owned.is_empty() {
                outcomes.push(crate::ingest::IngestOutcome {
                    points: 0,
                    lists_touched: 0,
                    speed_observations: 0,
                    wal_ordinal: None,
                });
                continue;
            }
            outcomes.push(shard.entries[0].engine.ingest_prenormalized(&owned)?);
        }
        Ok(outcomes)
    }

    /// Answers a single-location query across the shards; see
    /// [`ReachabilityEngine::try_s_query`] for the error contract. The
    /// region is bit-identical to the single-engine answer.
    pub fn try_s_query(
        &self,
        query: &SQuery,
        algorithm: Algorithm,
    ) -> Result<QueryOutcome, QueryError> {
        query.validate()?;
        let reference = self.reference();
        let start_segment = reference.try_locate(&query.location)?;
        let routed = RoutedPostings { sharded: self };

        let io_before = self.io_snapshot();
        let t0 = Instant::now();
        let (region, verified, visited, max_b, min_b, bounding_time, verify_time) = match algorithm
        {
            Algorithm::ExhaustiveSearch => {
                let out = exhaustive_search(&self.network, &routed, query, start_segment)?;
                (
                    out.region,
                    out.verifications,
                    out.visited,
                    0,
                    0,
                    out.expansion_time,
                    out.verify_time,
                )
            }
            Algorithm::SqmbTbs => {
                let tb = Instant::now();
                let bounds = sqmb(
                    reference.con_index(),
                    self.network.num_segments(),
                    start_segment,
                    query.start_time_s,
                    query.duration_s,
                );
                let bounding_time = tb.elapsed();
                let tv = Instant::now();
                let core = VerifierCore::new(
                    &routed,
                    start_segment,
                    query.start_time_s,
                    query.duration_s,
                )?;
                let outcome = trace_back_search(&self.network, &core, &bounds, query.prob)?;
                let verify_time = tv.elapsed();
                (
                    outcome.region,
                    outcome.verifications,
                    outcome.visited,
                    bounds.max_region.len(),
                    bounds.min_region.len(),
                    bounding_time,
                    verify_time,
                )
            }
        };
        let wall_time = t0.elapsed();
        let io_after = self.io_snapshot();

        Ok(QueryOutcome {
            region,
            stats: QueryStats {
                wall_time,
                bounding_time,
                verify_time,
                io: io_after.delta_since(&io_before),
                segments_verified: verified,
                max_bounding_size: max_b,
                min_bounding_size: min_b,
                segments_visited: visited,
            },
        })
    }

    /// Answers a multi-location query across the shards; see
    /// [`ReachabilityEngine::try_m_query`] for the algorithm split and the
    /// error contract. MQMB computes **one** unified bounding over the
    /// replicated statistics; the per-start cores and the annulus sweep
    /// read routed postings.
    pub fn try_m_query(
        &self,
        query: &MQuery,
        algorithm: MQueryAlgorithm,
    ) -> Result<QueryOutcome, QueryError> {
        query.validate()?;
        match algorithm {
            MQueryAlgorithm::RepeatedSQuery => {
                let mut region = ReachableRegion::empty();
                let mut stats = QueryStats::default();
                for i in 0..query.locations.len() {
                    let sub = query.sub_query(i);
                    let outcome = self.try_s_query(&sub, Algorithm::SqmbTbs).map_err(|e| {
                        // Attribute an off-network location to its m-query index.
                        match e {
                            QueryError::LocationOffNetwork { location, .. } => {
                                QueryError::LocationOffNetwork { index: i, location }
                            }
                            other => other,
                        }
                    })?;
                    region = region.union(&self.network, &outcome.region);
                    stats = stats.merge(&outcome.stats);
                }
                Ok(QueryOutcome { region, stats })
            }
            MQueryAlgorithm::MqmbTbs => {
                let reference = self.reference();
                let starts: Vec<SegmentId> = query
                    .locations
                    .iter()
                    .enumerate()
                    .map(|(i, p)| {
                        reference.try_locate(p).map_err(|e| match e {
                            QueryError::LocationOffNetwork { location, .. } => {
                                QueryError::LocationOffNetwork { index: i, location }
                            }
                            other => other,
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let routed = RoutedPostings { sharded: self };
                let io_before = self.io_snapshot();
                let t0 = Instant::now();
                let bounds = mqmb(
                    reference.con_index(),
                    &self.network,
                    &starts,
                    &query.locations,
                    query.start_time_s,
                    query.duration_s,
                );
                let bounding_time = t0.elapsed();
                let outcome = mqmb_trace_back(
                    &self.network,
                    &routed,
                    &bounds,
                    &starts,
                    query.start_time_s,
                    query.duration_s,
                    query.prob,
                )?;
                let wall_time = t0.elapsed();
                let io_after = self.io_snapshot();
                Ok(QueryOutcome {
                    region: outcome.region,
                    stats: QueryStats {
                        wall_time,
                        bounding_time,
                        verify_time: outcome.setup_time + outcome.verify_time,
                        io: io_after.delta_since(&io_before),
                        segments_verified: outcome.verifications,
                        max_bounding_size: bounds.max_region.len(),
                        min_bounding_size: bounds.min_region.len(),
                        segments_visited: outcome.visited,
                    },
                })
            }
        }
    }

    /// Δt slot length of the backing index (replicated, so any engine's
    /// value is authoritative).
    pub fn slot_s(&self) -> u32 {
        self.reference().st_index().slot_s()
    }

    /// Snaps a location to its road segment; the spatial index is the full
    /// network on every engine, so the reference engine answers exactly
    /// like a single engine would.
    pub fn try_locate(&self, location: &streach_geo::GeoPoint) -> Result<SegmentId, QueryError> {
        self.reference().try_locate(location)
    }

    /// Registers an ingest observer on every shard **leader** (replicas
    /// apply the same batches later via WAL shipping). With owner-routed
    /// ingest the union of leader notifications covers every touched
    /// posting pair exactly once: each shard reports its owned pairs, and
    /// the statistics leader alone reports the speed slots and any day
    /// raise — an observer is woken once per batch per touched shard, not
    /// ×K for every batch.
    pub fn observe_ingest(&self, observer: &Arc<crate::ingest::IngestObserver>) {
        for shard in &self.shards {
            shard.entries[0].engine.observe_ingest(observer);
        }
    }

    /// Answers a batch of SQMB+TBS s-queries with one shared bounding pass
    /// per (origin segment, slot window) group, reading postings through
    /// the scatter-gather router. Results are in input order and
    /// bit-identical to per-query [`ShardedEngine::try_s_query`] with
    /// [`Algorithm::SqmbTbs`]; failures surface as that caller's error.
    pub fn try_s_query_coalesced(&self, queries: &[SQuery]) -> Vec<crate::serve::CoalescedAnswer> {
        let reference = self.reference();
        let routed = RoutedPostings { sharded: self };
        crate::serve::answer_coalesced(
            &self.network,
            reference.con_index(),
            &routed,
            &|location| reference.try_locate(location),
            queries,
        )
    }
}

/// The routed [`PostingSource`]: resolves each `(segment, slot)` read
/// against the shard owning the segment, with sticky replica failover.
/// Index scalars come from the reference engine — they are replicated, so
/// any engine (dead store or not; these never touch disk) answers them.
struct RoutedPostings<'a> {
    sharded: &'a ShardedEngine,
}

impl PostingSource for RoutedPostings<'_> {
    fn slot_s(&self) -> u32 {
        self.sharded.reference().st_index().slot_s()
    }

    fn num_days(&self) -> u16 {
        self.sharded.reference().st_index().num_days()
    }

    fn posting_encoding(&self) -> PostingEncoding {
        PostingSource::posting_encoding(self.sharded.reference().st_index())
    }

    fn io_stats(&self) -> Arc<IoStats> {
        self.sharded.io.clone()
    }

    fn read_time_list_into(
        &self,
        segment: SegmentId,
        slot: u32,
        buf: &mut Vec<u8>,
    ) -> StorageResult<bool> {
        let shard_id = self.sharded.map.shard_of(segment);
        let serving = &self.sharded.shards[shard_id as usize];
        serving.read_time_list_into(
            shard_id,
            self.sharded.order(serving.entries.len()),
            segment,
            slot,
            buf,
        )
    }

    fn malformed_posting(&self, segment: SegmentId, slot: u32) -> StorageError {
        let shard_id = self.sharded.map.shard_of(segment);
        let serving = &self.sharded.shards[shard_id as usize];
        PostingSource::malformed_posting(serving.entries[0].engine.st_index(), segment, slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use crate::config::IndexConfig;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::{FleetConfig, TrajectoryDataset};

    fn setup(
        num_shards: u16,
    ) -> (
        Arc<RoadNetwork>,
        TrajectoryDataset,
        ReachabilityEngine,
        ShardedEngine,
    ) {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig {
                num_taxis: 12,
                num_days: 3,
                ..FleetConfig::tiny()
            },
        );
        let config = IndexConfig {
            read_latency_us: 0,
            ..IndexConfig::default()
        };
        let single = EngineBuilder::new(network.clone(), &dataset)
            .index_config(config.clone())
            .build();
        let map = Arc::new(ShardMap::partition(&network, num_shards));
        let leaders: Vec<Arc<ReachabilityEngine>> = (0..num_shards)
            .map(|shard_id| {
                Arc::new(
                    EngineBuilder::new(network.clone(), &dataset)
                        .index_config(config.clone())
                        .shard(map.clone(), shard_id)
                        .build(),
                )
            })
            .collect();
        let sharded = ShardedEngine::new(map, leaders);
        (network, dataset, single, sharded)
    }

    #[test]
    fn sharded_queries_match_single_engine_bit_for_bit() {
        let (network, _dataset, single, sharded) = setup(3);
        let query = SQuery {
            location: network.bounds().center(),
            start_time_s: 9 * 3600,
            duration_s: 600,
            prob: 0.2,
        };
        for algo in [Algorithm::SqmbTbs, Algorithm::ExhaustiveSearch] {
            let want = single.try_s_query(&query, algo).unwrap();
            let got = sharded.try_s_query(&query, algo).unwrap();
            assert_eq!(want.region, got.region, "{algo:?}");
            assert_eq!(
                want.stats.segments_verified, got.stats.segments_verified,
                "{algo:?}"
            );
        }
    }

    #[test]
    fn sharded_m_queries_match_single_engine() {
        let (network, _dataset, single, sharded) = setup(2);
        let b = network.bounds();
        let m = MQuery {
            locations: vec![
                b.center(),
                streach_geo::GeoPoint::new(
                    b.center().lon + (b.max_lon - b.min_lon) * 0.2,
                    b.center().lat,
                ),
            ],
            start_time_s: 9 * 3600,
            duration_s: 600,
            prob: 0.2,
        };
        for algo in [MQueryAlgorithm::MqmbTbs, MQueryAlgorithm::RepeatedSQuery] {
            let want = single.try_m_query(&m, algo).unwrap();
            let got = sharded.try_m_query(&m, algo).unwrap();
            assert_eq!(want.region, got.region, "{algo:?}");
        }
    }

    #[test]
    fn routed_ingest_preserves_equivalence() {
        let (network, dataset, single, sharded) = setup(2);
        // Continue one trajectory: the statistics leader normalizes the
        // full batch, the owning shard folds the postings, and a shard
        // that owns nothing of the batch does zero work.
        let traj = dataset.trajectories().first().unwrap();
        let last = traj.visits.last().unwrap();
        let segment = SegmentId((last.segment.0 + 1) % network.num_segments() as u32);
        let points = vec![streach_traj::TrajPoint {
            traj_id: traj.traj_id,
            date: traj.date,
            segment,
            enter_time_s: last.enter_time_s + 60,
        }];
        single.ingest(&points).unwrap();
        let outcomes = sharded.ingest(&points).unwrap();
        assert_eq!(outcomes.len(), 2);
        // The single point lands on exactly one shard's postings; if that
        // shard is not the statistics leader, the leader still processed
        // the full batch (statistics) while the non-owning shard did
        // nothing at all.
        let owner = sharded.route_of(segment);
        if owner != 0 {
            assert_eq!(outcomes[1].points, 1);
            assert!(outcomes[1].lists_touched > 0);
        } else {
            assert_eq!(outcomes[1].points, 0);
            assert_eq!(outcomes[1].lists_touched, 0);
        }
        let query = SQuery {
            location: network.bounds().center(),
            start_time_s: 9 * 3600,
            duration_s: 600,
            prob: 0.2,
        };
        let want = single.try_s_query(&query, Algorithm::SqmbTbs).unwrap();
        let got = sharded.try_s_query(&query, Algorithm::SqmbTbs).unwrap();
        assert_eq!(want.region, got.region);
    }
}
