//! Time-slot arithmetic shared by the indexes and query processors.
//!
//! # Cross-midnight semantics
//!
//! The indexes treat the day as **circular**: `StIndex` and `ConIndex` both
//! reduce slot numbers modulo the number of slots per day, so a query window
//! that extends past midnight wraps onto the early slots of the *same*
//! indexed dates. [`slots_overlapping`] implements exactly that semantics —
//! a window `[23:55, 00:05)` covers the last slot of the day **and** slot 0.
//! The verifiers read their windows through this function, so the bounding
//! phase (which has always wrapped) and the verification phase agree on
//! which slots a cross-midnight window touches.

/// Index of the Δt slot containing `time_s` (seconds after midnight).
#[inline]
pub fn slot_of(time_s: u32, slot_s: u32) -> u32 {
    debug_assert!(slot_s > 0);
    (time_s % streach_traj::SECONDS_PER_DAY) / slot_s
}

/// Start time (seconds after midnight) of slot `slot`.
#[inline]
pub fn slot_start(slot: u32, slot_s: u32) -> u32 {
    slot * slot_s
}

/// Iterator over the slot indices covered by a (possibly cross-midnight)
/// time window. See [`slots_overlapping`].
#[derive(Debug, Clone)]
pub struct SlotWindow {
    /// Absolute second (may exceed one day) at which the next slot to yield
    /// begins or, for the first slot, any second inside it.
    cursor: u32,
    /// Number of slots left to yield.
    remaining: u32,
    slot_s: u32,
}

impl Iterator for SlotWindow {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let slot = slot_of(self.cursor, self.slot_s);
        // Advance to the start of the next slot. Slot grids restart at each
        // midnight, so when Δt does not divide the day the last slot of a
        // day is short and the next slot starts exactly at midnight.
        let day_pos = self.cursor % streach_traj::SECONDS_PER_DAY;
        let next_in_day = ((day_pos / self.slot_s) + 1) * self.slot_s;
        let advance = next_in_day.min(streach_traj::SECONDS_PER_DAY) - day_pos;
        self.cursor = self.cursor.saturating_add(advance);
        Some(slot)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for SlotWindow {}

/// All slot indices overlapping the half-open window `[start_s, end_s)`.
///
/// Windows extending past midnight **wrap** onto the beginning of the day,
/// matching the modular slot arithmetic of `StIndex::lookup` and
/// `ConIndex::slot_table`: a 10-minute window starting at 23:55 yields the
/// day's last slot followed by slot 0. At most one full day of slots is
/// yielded (longer windows already cover every slot), and each slot appears
/// at most once.
pub fn slots_overlapping(start_s: u32, end_s: u32, slot_s: u32) -> SlotWindow {
    debug_assert!(slot_s > 0);
    let day = streach_traj::SECONDS_PER_DAY;
    if end_s <= start_s {
        return SlotWindow {
            cursor: 0,
            remaining: 0,
            slot_s,
        };
    }
    // Normalize to a start inside the first day; cap the duration at one
    // day (a longer window cannot cover more slots than exist).
    let duration = (end_s - start_s).min(day);
    let start_s = start_s % day;
    let end_s = start_s + duration;

    // Slots touched before midnight ...
    let first_day_end = end_s.min(day);
    let count_day1 = slot_of(first_day_end - 1, slot_s) - slot_of(start_s, slot_s) + 1;
    // ... plus slots touched after wrapping (window `[0, end_s - day)`).
    let count_day2 = if end_s > day {
        (end_s - day).div_ceil(slot_s)
    } else {
        0
    };
    let slots_per_day = day.div_ceil(slot_s);
    SlotWindow {
        cursor: start_s,
        remaining: (count_day1 + count_day2).min(slots_per_day),
        slot_s,
    }
}

/// Formats a time of day as `HH:MM`.
pub fn format_hhmm(time_s: u32) -> String {
    let t = time_s % streach_traj::SECONDS_PER_DAY;
    format!("{:02}:{:02}", t / 3600, (t % 3600) / 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_of_basic() {
        assert_eq!(slot_of(0, 300), 0);
        assert_eq!(slot_of(299, 300), 0);
        assert_eq!(slot_of(300, 300), 1);
        assert_eq!(slot_of(11 * 3600, 300), 132);
        // Times past midnight wrap.
        assert_eq!(slot_of(streach_traj::SECONDS_PER_DAY + 30, 300), 0);
    }

    #[test]
    fn slot_start_inverts_slot_of() {
        for slot in [0u32, 1, 100, 287] {
            assert_eq!(slot_of(slot_start(slot, 300), 300), slot);
        }
    }

    #[test]
    fn slots_overlapping_windows() {
        let collect = |s, e, dt| slots_overlapping(s, e, dt).collect::<Vec<u32>>();
        // A window exactly one slot long.
        assert_eq!(collect(600, 900, 300), vec![2]);
        // A window spanning two slots.
        assert_eq!(collect(650, 950, 300), vec![2, 3]);
        // A 10-minute query at 11:00 with 5-minute slots.
        assert_eq!(collect(11 * 3600, 11 * 3600 + 600, 300), vec![132, 133]);
        // Empty and degenerate windows.
        assert!(collect(500, 500, 300).is_empty());
        assert!(collect(900, 600, 300).is_empty());
    }

    #[test]
    fn slots_overlapping_wraps_past_midnight() {
        let collect = |s, e, dt| slots_overlapping(s, e, dt).collect::<Vec<u32>>();
        // 23:55 + 10 minutes: the day's last slot and slot 0.
        let s = 23 * 3600 + 55 * 60;
        assert_eq!(collect(s, s + 600, 300), vec![287, 0]);
        // 23:00 to 25:00 covers the last 12 slots and the first 12.
        let slots = collect(23 * 3600, 25 * 3600, 300);
        assert_eq!(slots.len(), 24);
        assert_eq!(slots[0], 276);
        assert_eq!(slots[11], 287);
        assert_eq!(slots[12], 0);
        assert_eq!(slots[23], 11);
        // Ending exactly at midnight does not wrap.
        assert_eq!(
            collect(23 * 3600 + 55 * 60, streach_traj::SECONDS_PER_DAY, 300),
            vec![287]
        );
    }

    #[test]
    fn slots_overlapping_caps_at_one_day() {
        // A window longer than a day covers every slot exactly once.
        let slots: Vec<u32> = slots_overlapping(600, 600 + 3 * 86_400, 300).collect();
        assert_eq!(slots.len(), 288);
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 288, "every slot exactly once");
        assert_eq!(
            slots[0], 2,
            "starts at the slot containing the window start"
        );
    }

    #[test]
    fn slots_overlapping_non_divisible_slot_length() {
        // Δt = 7 min does not divide the day: the last slot (205) is short
        // and the grid restarts at midnight.
        let slot_s = 7 * 60;
        let day = streach_traj::SECONDS_PER_DAY;
        let last_slot_start = (day / slot_s) * slot_s; // 86_100 = slot 205
        let slots: Vec<u32> = slots_overlapping(last_slot_start - 60, day + 400, slot_s).collect();
        assert_eq!(slots, vec![204, 205, 0]);
        let two: Vec<u32> = slots_overlapping(last_slot_start, day + 500, slot_s).collect();
        assert_eq!(two, vec![205, 0, 1]);
    }

    #[test]
    fn slot_window_is_exact_size() {
        let w = slots_overlapping(23 * 3600 + 55 * 60, 24 * 3600 + 600, 300);
        assert_eq!(w.len(), 3);
        assert_eq!(w.collect::<Vec<_>>(), vec![287, 0, 1]);
        assert_eq!(slots_overlapping(600, 900, 300).len(), 1);
    }

    #[test]
    fn format_hhmm_examples() {
        assert_eq!(format_hhmm(0), "00:00");
        assert_eq!(format_hhmm(11 * 3600 + 5 * 60), "11:05");
        assert_eq!(format_hhmm(23 * 3600 + 59 * 60 + 59), "23:59");
        assert_eq!(format_hhmm(streach_traj::SECONDS_PER_DAY), "00:00");
    }
}
