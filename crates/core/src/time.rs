//! Time-slot arithmetic shared by the indexes and query processors.

/// Index of the Δt slot containing `time_s` (seconds after midnight).
#[inline]
pub fn slot_of(time_s: u32, slot_s: u32) -> u32 {
    debug_assert!(slot_s > 0);
    (time_s % streach_traj::SECONDS_PER_DAY) / slot_s
}

/// Start time (seconds after midnight) of slot `slot`.
#[inline]
pub fn slot_start(slot: u32, slot_s: u32) -> u32 {
    slot * slot_s
}

/// All slot indices overlapping the half-open window `[start_s, end_s)`, as
/// an allocation-free range. Windows extending past midnight are clamped to
/// the end of the day — the paper's queries are phrased within a single day.
pub fn slots_overlapping(start_s: u32, end_s: u32, slot_s: u32) -> std::ops::RangeInclusive<u32> {
    if end_s <= start_s {
        #[allow(clippy::reversed_empty_ranges)]
        return 1..=0; // canonical empty range
    }
    let end_s = end_s.min(streach_traj::SECONDS_PER_DAY);
    let first = slot_of(start_s, slot_s);
    let last = slot_of(end_s.saturating_sub(1), slot_s);
    first..=last
}

/// Formats a time of day as `HH:MM`.
pub fn format_hhmm(time_s: u32) -> String {
    let t = time_s % streach_traj::SECONDS_PER_DAY;
    format!("{:02}:{:02}", t / 3600, (t % 3600) / 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_of_basic() {
        assert_eq!(slot_of(0, 300), 0);
        assert_eq!(slot_of(299, 300), 0);
        assert_eq!(slot_of(300, 300), 1);
        assert_eq!(slot_of(11 * 3600, 300), 132);
        // Times past midnight wrap.
        assert_eq!(slot_of(streach_traj::SECONDS_PER_DAY + 30, 300), 0);
    }

    #[test]
    fn slot_start_inverts_slot_of() {
        for slot in [0u32, 1, 100, 287] {
            assert_eq!(slot_of(slot_start(slot, 300), 300), slot);
        }
    }

    #[test]
    fn slots_overlapping_windows() {
        let collect = |s, e, dt| slots_overlapping(s, e, dt).collect::<Vec<u32>>();
        // A window exactly one slot long.
        assert_eq!(collect(600, 900, 300), vec![2]);
        // A window spanning two slots.
        assert_eq!(collect(650, 950, 300), vec![2, 3]);
        // A 10-minute query at 11:00 with 5-minute slots.
        assert_eq!(collect(11 * 3600, 11 * 3600 + 600, 300), vec![132, 133]);
        // Empty and degenerate windows.
        assert!(collect(500, 500, 300).is_empty());
        assert!(collect(900, 600, 300).is_empty());
        // Window clamped at the end of the day.
        let slots = collect(23 * 3600 + 3300, 25 * 3600, 300);
        assert_eq!(slots.last(), Some(&287));
    }

    #[test]
    fn format_hhmm_examples() {
        assert_eq!(format_hhmm(0), "00:00");
        assert_eq!(format_hhmm(11 * 3600 + 5 * 60), "11:05");
        assert_eq!(format_hhmm(23 * 3600 + 59 * 60 + 59), "23:59");
        assert_eq!(format_hhmm(streach_traj::SECONDS_PER_DAY), "00:00");
    }
}
