//! Index construction configuration.

use serde::{Deserialize, Serialize};
use streach_storage::{PostingEncoding, StorageBackend};

/// Configuration of the ST-Index and Con-Index construction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexConfig {
    /// Temporal granularity Δt in seconds (the paper evaluates
    /// Δt ∈ {1, 5, 10, 20} minutes; 5 minutes is the default).
    pub slot_s: u32,
    /// Buffer-pool capacity, in pages, for the posting store backing the
    /// ST-Index time lists.
    pub pool_pages: usize,
    /// Simulated latency per physical page read, in microseconds. Zero
    /// disables the simulated disk entirely. The default (40 µs) models an
    /// inexpensive SSD and restores the I/O-bound cost structure of the
    /// paper's 194 GB on-disk dataset.
    pub read_latency_us: u64,
    /// Maximum number of time slots for which Con-Index connection tables
    /// are kept in memory at once (least-recently-used slots are evicted).
    pub max_cached_con_slots: usize,
    /// Fallback minimum speed (m/s) used in Near-list construction for
    /// segments with no historical observation in a slot.
    pub fallback_min_speed_ms: f64,
    /// Number of automatic retries (deterministic doubling backoff) the
    /// posting buffer pool makes when a physical page read fails with a
    /// *transient* error (`EIO`-class). `0` surfaces every fault
    /// immediately.
    pub read_retries: u32,
    /// Delta-heap size (bytes of appended postings) at which the background
    /// maintenance worker ([`crate::maintenance`]) triggers an automatic
    /// incremental checkpoint of the serving engine. `0` disables
    /// auto-checkpointing; the worker then only compacts.
    pub auto_checkpoint_bytes: u64,
    /// Physical backend serving the snapshot's sealed page files on open:
    /// buffered file reads or a read-only memory mapping. Recorded in the
    /// snapshot config; overridable per open (benchmarks compare both).
    pub storage_backend: StorageBackend,
    /// Wire encoding of the posting heaps. New engines default to the
    /// delta/varint encoding; v3 snapshots reopen as
    /// [`PostingEncoding::LegacyRaw`] so their untagged heaps (and every
    /// blob appended to them afterwards) stay self-consistent.
    pub posting_encoding: PostingEncoding,
}

impl Default for IndexConfig {
    fn default() -> Self {
        Self {
            slot_s: 300,
            pool_pages: 256,
            read_latency_us: 40,
            max_cached_con_slots: 64,
            fallback_min_speed_ms: 2.0,
            read_retries: streach_storage::DEFAULT_READ_RETRIES,
            auto_checkpoint_bytes: 8 * 1024 * 1024,
            storage_backend: StorageBackend::default(),
            posting_encoding: PostingEncoding::default(),
        }
    }
}

impl IndexConfig {
    /// Number of Δt slots in one day.
    pub fn slots_per_day(&self) -> u32 {
        streach_traj::SECONDS_PER_DAY.div_ceil(self.slot_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_five_minute_slots() {
        let cfg = IndexConfig::default();
        assert_eq!(cfg.slot_s, 300);
        assert_eq!(cfg.slots_per_day(), 288);
    }

    #[test]
    fn slots_per_day_rounds_up() {
        let cfg = IndexConfig {
            slot_s: 7 * 60,
            ..IndexConfig::default()
        };
        assert_eq!(cfg.slots_per_day(), 206); // ceil(1440 / 7)
    }

    #[test]
    fn one_minute_granularity() {
        let cfg = IndexConfig {
            slot_s: 60,
            ..IndexConfig::default()
        };
        assert_eq!(cfg.slots_per_day(), 1440);
    }
}
