//! Streaming ingest: WAL-backed trajectory appends into a serving engine.
//!
//! A built (or reopened) [`crate::ReachabilityEngine`] is a *sealed*
//! artifact: its ST-Index base heap and speed statistics describe the data
//! it was constructed over. This module lets the engine keep absorbing the
//! fleet's new trajectory points without a rebuild:
//!
//! 1. [`ReachabilityEngine::attach_wal`](crate::ReachabilityEngine::attach_wal)
//!    opens (or recovers) a [`streach_storage::Wal`] and replays every
//!    record the current snapshot has not folded in yet, reconstructing the
//!    delta tail exactly as it was before the crash/restart.
//! 2. [`ReachabilityEngine::ingest`](crate::ReachabilityEngine::ingest)
//!    appends a batch of [`TrajPoint`]s: the batch is framed and fsynced
//!    into the WAL first (durability; concurrent callers **group-commit**,
//!    sharing one physical fsync), then folded — strictly in WAL-record
//!    order — into the ST-Index delta postings, the online
//!    [`crate::SpeedStats`] and the day count.
//! 3. [`ReachabilityEngine::save_incremental_snapshot`](crate::ReachabilityEngine::save_incremental_snapshot)
//!    chains the delta sections onto the snapshot container, after which
//!    the WAL is rotated — folded records never replay again. The
//!    background [`crate::maintenance::MaintenanceController`] triggers
//!    this automatically when the delta heap crosses
//!    [`IndexConfig::auto_checkpoint_bytes`](crate::IndexConfig::auto_checkpoint_bytes).
//!
//! Replay and re-application are **idempotent** (time-list merges are
//! sorted-set inserts; speed min/max aggregation is order-insensitive), so
//! at-least-once delivery after a torn WAL tail converges to the same
//! engine a from-scratch build on the combined dataset produces.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::{Buf, BufMut};
use streach_storage::{get_varint_u32, put_varint_u32, StorageError, StorageResult, Wal};
use streach_traj::TrajPoint;

/// What one applied ingest batch touched — the invalidation signal
/// delivered to observers registered with
/// [`crate::ReachabilityEngine::observe_ingest`] (the result cache of
/// [`crate::serve`] is the canonical consumer).
#[derive(Debug, Clone, Default)]
pub struct IngestTouch {
    /// The (slot, segment) delta-directory pairs whose posting list the
    /// batch created or re-merged, sorted ascending and deduplicated, with
    /// the slot wrapped into the day grid. On a shard engine these are the
    /// shard-owned pairs only.
    pub posting_pairs: Vec<(u32, u32)>,
    /// Day slots in which the batch contributed Con-Index speed pairs,
    /// sorted and deduplicated. Speed statistics feed the SQMB/MQMB
    /// bounding regions (and the ES travel cap), so an answer whose slot
    /// window meets one of these slots may change for **any** segment —
    /// there is no sound per-segment refinement here.
    pub speed_slots: Vec<u32>,
    /// Whether the batch raised the engine's day count. The day count is
    /// every reachability probability's denominator, so when it rises every
    /// cached answer is stale at once.
    pub num_days_raised: bool,
}

impl IngestTouch {
    /// True when the batch changed nothing observable by queries.
    pub fn is_empty(&self) -> bool {
        self.posting_pairs.is_empty() && self.speed_slots.is_empty() && !self.num_days_raised
    }
}

/// Callback invoked (under the engine's ingest lock) after every
/// successfully applied ingest batch, live or WAL-replayed.
pub type IngestObserver = dyn Fn(&IngestTouch) + Send + Sync;

/// Outcome of one [`crate::ReachabilityEngine::ingest`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Number of trajectory points in the batch.
    pub points: usize,
    /// Number of (slot, segment) delta time lists created or re-merged.
    pub lists_touched: usize,
    /// Number of valid speed observations folded into the Con-Index
    /// statistics (cached connection tables are invalidated when > 0).
    pub speed_observations: usize,
    /// WAL record ordinal the batch was logged under, when a WAL is
    /// attached.
    pub wal_ordinal: Option<u64>,
}

/// Outcome of attaching (and replaying) a write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalAttach {
    /// Generation of the attached log.
    pub generation: u64,
    /// Records skipped because the snapshot had already folded them in.
    pub records_skipped: u64,
    /// Records replayed into the engine.
    pub records_replayed: u64,
    /// Trajectory points contained in the replayed records.
    pub points_replayed: u64,
    /// Bytes of torn WAL tail discarded during recovery.
    pub truncated_bytes: u64,
}

/// The last segment visit seen per (trajectory, date) — the state needed to
/// turn a point stream into the consecutive-visit speed pairs the batch
/// build derives from `windows(2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LastVisit {
    pub segment: u32,
    pub enter_time_s: u32,
}

/// Last visit per (traj_id, date) — the table replayed from snapshots.
pub(crate) type LastVisitMap = HashMap<(u32, u16), LastVisit>;

/// Mutable ingest state of an engine, behind one mutex: the attached WAL,
/// the WAL bookkeeping persisted in snapshots, and the per-trajectory
/// last-visit table. The WAL handle itself is shared (`Arc`) so that
/// group-committed ingest callers can append + fsync **without** holding
/// this mutex — only the application phase serializes through it.
#[derive(Default)]
pub(crate) struct IngestState {
    pub wal: Option<Arc<Wal>>,
    /// Generation of the WAL whose prefix the engine state covers.
    pub wal_generation: u64,
    /// Length of the fully-applied record prefix of that generation.
    pub wal_applied: u64,
    /// Ordinal (within `wal_generation`) of the next record to fold into
    /// the index. Group-committed ingest callers apply strictly in WAL
    /// order — live application is then bit-identical to replay — and this
    /// cursor, unlike `wal_applied`, keeps advancing past records whose
    /// group fsync failed (they are skipped live and recovered by replay).
    pub apply_cursor: u64,
    /// Set when a record was logged but its application failed (or its
    /// group fsync did): the applied-prefix counter freezes (replay after
    /// restart re-applies the tail idempotently) and rotation is
    /// suppressed.
    pub prefix_broken: bool,
    /// Last visit per (traj_id, date), for speed-pair extraction.
    pub last_visit: LastVisitMap,
}

impl IngestState {
    /// Records that one more WAL record is fully applied (no-op once the
    /// prefix is broken).
    pub fn mark_applied(&mut self) {
        if !self.prefix_broken {
            self.wal_applied += 1;
        }
    }
}

/// Tag byte opening a varint-encoded WAL batch record. The legacy format
/// opens with the little-endian `u32` point count instead; `decode_record`
/// accepts both (see there for how the formats are told apart).
const WAL_BATCH_TAG_VARINT: u8 = 0x01;

/// Tag byte opening a **pre-normalized** varint batch record: the points
/// were normalized (re-entries dropped) and owner-routed by the sharded
/// router's statistics leader, so replay must apply them postings-only —
/// no re-normalization, no speed-pair derivation, no last-visit staging
/// (see [`crate::sharded::ShardedEngine::ingest`]). Body layout is
/// identical to [`WAL_BATCH_TAG_VARINT`].
const WAL_BATCH_TAG_PRENORMALIZED: u8 = 0x02;

/// Encodes a batch of trajectory points as a WAL record payload.
///
/// Layout (varint format, shared with the posting heap's delta encoding —
/// see `streach_storage::postings` for the canonical-varint rules):
/// tag byte `0x01`, varint point count, then per point varint `traj_id`,
/// varint `date`, varint `segment`, varint `enter_time_s`. Fleet IDs and
/// intra-day timestamps are small, so batches shrink to roughly half the
/// legacy fixed-width 14 bytes/point.
pub(crate) fn encode_batch(points: &[TrajPoint]) -> Vec<u8> {
    encode_tagged_batch(WAL_BATCH_TAG_VARINT, points)
}

/// Encodes an owner-routed, already-normalized batch under the
/// pre-normalized tag. Same varint body as [`encode_batch`]; only the tag
/// byte differs, and the tag is what tells replay to skip normalization.
pub(crate) fn encode_prenormalized_batch(points: &[TrajPoint]) -> Vec<u8> {
    encode_tagged_batch(WAL_BATCH_TAG_PRENORMALIZED, points)
}

fn encode_tagged_batch(tag: u8, points: &[TrajPoint]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(6 + points.len() * 8);
    buf.push(tag);
    put_varint_u32(&mut buf, points.len() as u32);
    for p in points {
        put_varint_u32(&mut buf, p.traj_id);
        put_varint_u32(&mut buf, u32::from(p.date));
        put_varint_u32(&mut buf, p.segment.0);
        put_varint_u32(&mut buf, p.enter_time_s);
    }
    buf
}

/// Decodes the varint batch body following the tag byte. Strict: any
/// varint failure, a date outside `u16`, or trailing bytes is `None`.
fn decode_batch_varint(mut buf: &[u8]) -> Option<Vec<TrajPoint>> {
    let n = get_varint_u32(&mut buf)? as usize;
    // The count is untrusted until the points prove themselves: clamp the
    // pre-allocation to what the buffer could possibly hold (≥ 4 bytes per
    // point — four varints of at least one byte each).
    let mut points = Vec::with_capacity(n.min(buf.remaining() / 4));
    for _ in 0..n {
        let traj_id = get_varint_u32(&mut buf)?;
        let date = u16::try_from(get_varint_u32(&mut buf)?).ok()?;
        let segment = streach_roadnet::SegmentId(get_varint_u32(&mut buf)?);
        let enter_time_s = get_varint_u32(&mut buf)?;
        points.push(TrajPoint {
            traj_id,
            date,
            segment,
            enter_time_s,
        });
    }
    if !buf.is_empty() {
        return None;
    }
    Some(points)
}

/// Decodes the legacy fixed-width batch body (LE `u32` count + 14 bytes per
/// point). Strict: the buffer length must match the count exactly.
fn decode_batch_legacy(mut buf: &[u8]) -> Option<Vec<TrajPoint>> {
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() != n * 14 {
        return None;
    }
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        points.push(TrajPoint {
            traj_id: buf.get_u32_le(),
            date: buf.get_u16_le(),
            segment: streach_roadnet::SegmentId(buf.get_u32_le()),
            enter_time_s: buf.get_u32_le(),
        });
    }
    Some(points)
}

/// A decoded WAL ingest record: the points plus whether they were written
/// pre-normalized (owner-routed by the sharded router) and must therefore
/// be applied postings-only on replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DecodedRecord {
    pub points: Vec<TrajPoint>,
    pub prenormalized: bool,
}

/// Decodes a WAL record payload back into trajectory points, accepting the
/// varint formats written by `encode_batch` / `encode_prenormalized_batch`
/// and the legacy fixed-width format of pre-existing logs. Strict like
/// every decoder in this workspace: a short buffer or trailing bytes is
/// `Corrupt`, never a silently shorter batch.
///
/// Format dispatch: a first byte of `0x01` / `0x02` is *tried* as a varint
/// tag first; on strict-parse failure the payload falls back to the legacy
/// decoder. (A legacy batch can legitimately start with such a byte — a
/// count with low byte 1 or 2 — but its count high bytes then read as a
/// tiny varint count that leaves the fixed-width points as trailing bytes,
/// so the varint parse always rejects it and the fallback decodes it
/// correctly.)
pub(crate) fn decode_record(buf: &[u8]) -> StorageResult<DecodedRecord> {
    let corrupt = || StorageError::corrupt("WAL ingest record is malformed");
    if let Some((&tag, body)) = buf.split_first() {
        if tag == WAL_BATCH_TAG_VARINT || tag == WAL_BATCH_TAG_PRENORMALIZED {
            if let Some(points) = decode_batch_varint(body) {
                return Ok(DecodedRecord {
                    points,
                    prenormalized: tag == WAL_BATCH_TAG_PRENORMALIZED,
                });
            }
        }
    }
    decode_batch_legacy(buf)
        .map(|points| DecodedRecord {
            points,
            prenormalized: false,
        })
        .ok_or_else(corrupt)
}

/// Point-only view of [`decode_record`], for callers (and tests) that do
/// not care about the pre-normalized flag.
#[cfg(test)]
pub(crate) fn decode_batch(buf: &[u8]) -> StorageResult<Vec<TrajPoint>> {
    decode_record(buf).map(|r| r.points)
}

/// Serializes the ingest bookkeeping for the snapshot container:
/// generation, applied-prefix length and the last-visit table.
pub(crate) fn encode_ingest_meta(
    generation: u64,
    applied: u64,
    last_visit: &LastVisitMap,
) -> Vec<u8> {
    let mut entries: Vec<(&(u32, u16), &LastVisit)> = last_visit.iter().collect();
    entries.sort_unstable_by_key(|(k, _)| **k);
    let mut buf = Vec::with_capacity(20 + entries.len() * 14);
    buf.put_u64_le(generation);
    buf.put_u64_le(applied);
    buf.put_u32_le(entries.len() as u32);
    for ((traj_id, date), visit) in entries {
        buf.put_u32_le(*traj_id);
        buf.put_u16_le(*date);
        buf.put_u32_le(visit.segment);
        buf.put_u32_le(visit.enter_time_s);
    }
    buf
}

/// Deserializes the ingest bookkeeping section.
pub(crate) fn decode_ingest_meta(mut buf: &[u8]) -> StorageResult<(u64, u64, LastVisitMap)> {
    let corrupt = || StorageError::corrupt("ingest_meta section is malformed");
    if buf.remaining() < 20 {
        return Err(corrupt());
    }
    let generation = buf.get_u64_le();
    let applied = buf.get_u64_le();
    let n = buf.get_u32_le() as usize;
    if buf.remaining() != n * 14 {
        return Err(corrupt());
    }
    let mut last_visit = HashMap::with_capacity(n);
    for _ in 0..n {
        let traj_id = buf.get_u32_le();
        let date = buf.get_u16_le();
        let visit = LastVisit {
            segment: buf.get_u32_le(),
            enter_time_s: buf.get_u32_le(),
        };
        last_visit.insert((traj_id, date), visit);
    }
    Ok((generation, applied, last_visit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use streach_roadnet::SegmentId;

    fn sample_points() -> Vec<TrajPoint> {
        vec![
            TrajPoint {
                traj_id: 7,
                date: 3,
                segment: SegmentId(99),
                enter_time_s: 32_400,
            },
            TrajPoint {
                traj_id: 7,
                date: 3,
                segment: SegmentId(100),
                enter_time_s: 32_455,
            },
            TrajPoint {
                traj_id: 8,
                date: 4,
                segment: SegmentId(0),
                enter_time_s: 0,
            },
        ]
    }

    #[test]
    fn batch_roundtrip_and_strictness() {
        let points = sample_points();
        let bytes = encode_batch(&points);
        assert_eq!(decode_batch(&bytes).unwrap(), points);
        assert_eq!(decode_batch(&encode_batch(&[])).unwrap(), Vec::new());
        // Truncated or padded buffers are rejected.
        assert!(decode_batch(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_batch(&[]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_batch(&padded).is_err());
        // The varint format beats the legacy 4 + 14n fixed-width layout.
        assert!(bytes.len() < 4 + points.len() * 14);
    }

    /// The legacy fixed-width payload of pre-existing WALs.
    fn encode_batch_legacy(points: &[TrajPoint]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4 + points.len() * 14);
        buf.put_u32_le(points.len() as u32);
        for p in points {
            buf.put_u32_le(p.traj_id);
            buf.put_u16_le(p.date);
            buf.put_u32_le(p.segment.0);
            buf.put_u32_le(p.enter_time_s);
        }
        buf
    }

    #[test]
    fn legacy_fixed_width_batches_still_decode() {
        let points = sample_points();
        let legacy = encode_batch_legacy(&points);
        assert_eq!(decode_batch(&legacy).unwrap(), points);
        assert_eq!(decode_batch(&encode_batch_legacy(&[])).unwrap(), Vec::new());
        // The dispatch ambiguity case: a single-point legacy batch opens
        // with 0x01 (count low byte), same as the varint tag. The varint
        // parse must reject it and the fallback must decode it.
        let one = vec![points[0]];
        let legacy_one = encode_batch_legacy(&one);
        assert_eq!(legacy_one[0], 0x01);
        assert_eq!(decode_batch(&legacy_one).unwrap(), one);
        // Legacy strictness survives the dual-accept path.
        assert!(decode_batch(&legacy[..legacy.len() - 1]).is_err());
        let mut padded = legacy;
        padded.push(0);
        assert!(decode_batch(&padded).is_err());
    }

    #[test]
    fn prenormalized_batches_roundtrip_with_flag() {
        let points = sample_points();
        let raw = decode_record(&encode_batch(&points)).unwrap();
        assert!(!raw.prenormalized);
        assert_eq!(raw.points, points);
        let pre = decode_record(&encode_prenormalized_batch(&points)).unwrap();
        assert!(pre.prenormalized);
        assert_eq!(pre.points, points);
        // Strictness carries over to the 0x02 tag.
        let bytes = encode_prenormalized_batch(&points);
        assert!(decode_record(&bytes[..bytes.len() - 1]).is_err());
        // Dispatch ambiguity: a two-point legacy batch opens with 0x02
        // (count low byte), same as the pre-normalized tag. It must decode
        // as a legacy (raw) batch, not as pre-normalized.
        let two = vec![points[0], points[1]];
        let legacy_two = encode_batch_legacy(&two);
        assert_eq!(legacy_two[0], 0x02);
        let decoded = decode_record(&legacy_two).unwrap();
        assert!(!decoded.prenormalized);
        assert_eq!(decoded.points, two);
    }

    #[test]
    fn varint_batch_rejects_out_of_range_dates() {
        // date is u16 on the wire; a varint body claiming a larger value
        // must be rejected, not truncated.
        let mut buf = vec![0x01u8];
        put_varint_u32(&mut buf, 1); // count
        put_varint_u32(&mut buf, 7); // traj_id
        put_varint_u32(&mut buf, 70_000); // date: exceeds u16
        put_varint_u32(&mut buf, 99); // segment
        put_varint_u32(&mut buf, 0); // enter_time_s
        assert!(decode_batch(&buf).is_err());
    }

    #[test]
    fn ingest_meta_roundtrip() {
        let mut last_visit = HashMap::new();
        last_visit.insert(
            (7, 3),
            LastVisit {
                segment: 100,
                enter_time_s: 32_455,
            },
        );
        last_visit.insert(
            (8, 4),
            LastVisit {
                segment: 0,
                enter_time_s: 0,
            },
        );
        let bytes = encode_ingest_meta(5, 12, &last_visit);
        let (generation, applied, decoded) = decode_ingest_meta(&bytes).unwrap();
        assert_eq!(generation, 5);
        assert_eq!(applied, 12);
        assert_eq!(decoded, last_visit);
        // Determinism: the map serializes in sorted key order.
        assert_eq!(bytes, encode_ingest_meta(5, 12, &decoded));
        assert!(decode_ingest_meta(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn applied_prefix_freezes_once_broken() {
        let mut state = IngestState::default();
        state.mark_applied();
        state.mark_applied();
        assert_eq!(state.wal_applied, 2);
        state.prefix_broken = true;
        state.mark_applied();
        assert_eq!(state.wal_applied, 2, "broken prefix must not advance");
    }
}
