//! The exhaustive-search (ES) baseline.
//!
//! "For s-query, we choose baseline algorithm as exhaustive search (ES)
//! method, which starts from the querying location s and time T, to search
//! the neighboring road segments through the road network. The searching
//! process terminates until Prob-reachable road segments at all possible
//! branches on the road network." (Section 4.2)
//!
//! ES performs a plain network expansion from the start segment and verifies
//! **every** expanded segment against the trajectory postings, including the
//! dense area around the start location whose posting lists are the longest.
//! Expansion is bounded by the maximum distance any vehicle could cover in
//! the query duration (free-flow highway speed), which is what makes the
//! search exhaustive rather than unbounded.

use std::collections::{HashSet, VecDeque};

use streach_roadnet::{segment_distances_from, RoadClass, RoadNetwork, SegmentId};

use crate::query::verifier::ReachabilityVerifier;
use crate::query::SQuery;
use crate::region::ReachableRegion;
use crate::st_index::StIndex;

/// Answers an s-query by exhaustive search. Returns the Prob-reachable
/// region, the number of verified segments and the number of visited
/// segments.
pub fn exhaustive_search(
    network: &RoadNetwork,
    st_index: &StIndex,
    query: &SQuery,
    start_segment: SegmentId,
) -> (ReachableRegion, usize, usize) {
    let mut verifier = ReachabilityVerifier::new(st_index, start_segment, query.start_time_s, query.duration_s);

    // Upper bound on how far anything can travel during L: free-flow highway
    // speed with 10% slack.
    let cap_m = query.duration_s as f64 * RoadClass::Highway.free_flow_ms() * 1.1;
    // The distance map doubles as the visit order (network expansion).
    let distances = segment_distances_from(network, start_segment, cap_m);

    let mut reachable: Vec<SegmentId> = vec![start_segment];
    let mut visited: HashSet<SegmentId> = HashSet::new();
    let mut frontier: VecDeque<SegmentId> = VecDeque::new();
    frontier.push_back(start_segment);
    visited.insert(start_segment);

    while let Some(seg) = frontier.pop_front() {
        for next in network.successors(seg) {
            if !visited.insert(next) {
                continue;
            }
            if !distances.contains_key(&next) {
                continue; // beyond the travel-distance cap
            }
            // Verify against the trajectory postings (disk I/O).
            if verifier.is_reachable(next, query.prob) {
                reachable.push(next);
            }
            frontier.push_back(next);
        }
    }

    let region = ReachableRegion::from_segments(network, reachable);
    (region, verifier.verifications, visited.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use std::sync::Arc;
    use streach_geo::GeoPoint;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::{FleetConfig, TrajectoryDataset};

    fn setup() -> (Arc<RoadNetwork>, StIndex, GeoPoint) {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let center = city.central_point();
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig { num_taxis: 30, num_days: 5, ..FleetConfig::tiny() },
        );
        let st = StIndex::build(network.clone(), &dataset, &IndexConfig { read_latency_us: 0, ..Default::default() });
        (network, st, center)
    }

    fn query(center: GeoPoint, duration_s: u32, prob: f64) -> SQuery {
        SQuery { location: center, start_time_s: 9 * 3600, duration_s, prob }
    }

    #[test]
    fn region_contains_start_and_respects_distance_cap() {
        let (network, st, center) = setup();
        let q = query(center, 300, 0.2);
        let r0 = st.locate_segment(&q.location).unwrap();
        let (region, verified, visited) = exhaustive_search(&network, &st, &q, r0);
        assert!(region.contains(r0));
        assert!(verified > 0);
        assert!(visited >= region.len());
        // Nothing in the region is farther than the free-flow cap.
        let cap_m = q.duration_s as f64 * RoadClass::Highway.free_flow_ms() * 1.1;
        let dist = segment_distances_from(&network, r0, cap_m * 2.0);
        for &seg in &region.segments {
            assert!(
                dist.get(&seg).copied().unwrap_or(f64::INFINITY) <= cap_m + 1.0,
                "{seg} beyond the cap"
            );
        }
    }

    #[test]
    fn longer_duration_reaches_at_least_as_much() {
        let (network, st, center) = setup();
        let r0 = st.locate_segment(&center).unwrap();
        let (short, _, _) = exhaustive_search(&network, &st, &query(center, 300, 0.2), r0);
        let (long, _, _) = exhaustive_search(&network, &st, &query(center, 1200, 0.2), r0);
        assert!(long.total_length_km >= short.total_length_km);
        assert!(long.is_superset_of(&short));
    }

    #[test]
    fn higher_probability_gives_smaller_region() {
        let (network, st, center) = setup();
        let r0 = st.locate_segment(&center).unwrap();
        let (low, _, _) = exhaustive_search(&network, &st, &query(center, 900, 0.2), r0);
        let (high, _, _) = exhaustive_search(&network, &st, &query(center, 900, 0.9), r0);
        assert!(high.len() <= low.len());
        assert!(low.is_superset_of(&high));
    }

    #[test]
    fn query_outside_operating_hours_returns_only_start() {
        let (network, st, center) = setup();
        let r0 = st.locate_segment(&center).unwrap();
        let q = SQuery { location: center, start_time_s: 2 * 3600, duration_s: 600, prob: 0.2 };
        let (region, _, _) = exhaustive_search(&network, &st, &q, r0);
        // No trajectories at 02:00 in the tiny fleet, so only the start
        // segment (included by definition) is returned.
        assert_eq!(region.segments, vec![r0]);
    }
}
