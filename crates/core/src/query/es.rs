//! The exhaustive-search (ES) baseline.
//!
//! "For s-query, we choose baseline algorithm as exhaustive search (ES)
//! method, which starts from the querying location s and time T, to search
//! the neighboring road segments through the road network. The searching
//! process terminates until Prob-reachable road segments at all possible
//! branches on the road network." (Section 4.2)
//!
//! ES performs a plain network expansion from the start segment and verifies
//! **every** expanded segment against the trajectory postings, including the
//! dense area around the start location whose posting lists are the longest.
//! Expansion is bounded by the maximum distance any vehicle could cover in
//! the query duration (free-flow highway speed), which is what makes the
//! search exhaustive rather than unbounded.
//!
//! The expansion runs on the calling thread's reusable
//! [`DijkstraWorkspace`](streach_roadnet::DijkstraWorkspace) (dense arrays,
//! no hashing) and the per-segment verifications — independent posting-list
//! intersections — run in parallel, each worker holding its own
//! [`VerifierScratch`].

use std::time::{Duration, Instant};

use streach_roadnet::{RoadClass, RoadNetwork, SegmentId};
use streach_storage::StorageResult;

use crate::query::verifier::{PostingSource, VerifierCore, VerifierScratch};
use crate::query::SQuery;
use crate::region::ReachableRegion;

/// Outcome of an exhaustive search.
pub struct EsOutcome {
    /// The Prob-reachable region.
    pub region: ReachableRegion,
    /// Number of probability verifications performed (posting reads).
    pub verifications: usize,
    /// Number of segments visited by the network expansion.
    pub visited: usize,
    /// Time spent expanding the network (the "bounding" stage of ES).
    pub expansion_time: Duration,
    /// Time spent verifying candidate segments against the postings.
    pub verify_time: Duration,
}

/// Answers an s-query by exhaustive search. Fallible: every candidate
/// verification reads postings, and a storage fault anywhere in the batch
/// cancels the remaining work and surfaces as `Err`.
pub fn exhaustive_search<I: PostingSource + ?Sized>(
    network: &RoadNetwork,
    st_index: &I,
    query: &SQuery,
    start_segment: SegmentId,
) -> StorageResult<EsOutcome> {
    // Upper bound on how far anything can travel during L: free-flow highway
    // speed with 10% slack. Everything the old breadth-first expansion could
    // reach within the cap is exactly the set Dijkstra settles. The run uses
    // the calling thread's long-lived workspace, so after the first query on
    // a thread the expansion allocates only the candidate list.
    let t0 = Instant::now();
    let cap_m = query.duration_s as f64 * RoadClass::Highway.free_flow_ms() * 1.1;
    let (candidates, visited) = streach_roadnet::with_thread_workspace(|ws| {
        ws.run(network, start_segment, cap_m);
        let candidates: Vec<SegmentId> = ws
            .settled()
            .map(|(seg, _)| seg)
            .filter(|seg| *seg != start_segment)
            .collect();
        (candidates, ws.num_settled())
    });
    let expansion_time = t0.elapsed();

    // Verify against the trajectory postings (disk I/O) — embarrassingly
    // parallel across candidates; every worker reuses one scratch. Core
    // construction (the start segment's posting reads) counts toward
    // verify_time, mirroring the SQMB+TBS and MQMB stat attribution.
    let t1 = Instant::now();
    let core = VerifierCore::new(
        st_index,
        start_segment,
        query.start_time_s,
        query.duration_s,
    )?;
    let prob = query.prob;
    let passed =
        streach_par::try_par_map_with(&candidates, VerifierScratch::new, |scratch, seg| {
            core.is_reachable(scratch, *seg, prob)
        })?;
    let verify_time = t1.elapsed();

    let mut reachable: Vec<SegmentId> = vec![start_segment];
    reachable.extend(
        candidates
            .iter()
            .zip(&passed)
            .filter(|(_, ok)| **ok)
            .map(|(seg, _)| *seg),
    );

    Ok(EsOutcome {
        region: ReachableRegion::from_segments(network, reachable),
        verifications: candidates.len(),
        visited,
        expansion_time,
        verify_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::st_index::StIndex;
    use std::sync::Arc;
    use streach_geo::GeoPoint;
    use streach_roadnet::{segment_distances_from, GeneratorConfig, SyntheticCity};
    use streach_traj::{FleetConfig, TrajectoryDataset};

    fn setup() -> (Arc<RoadNetwork>, StIndex, GeoPoint) {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let center = city.central_point();
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig {
                num_taxis: 30,
                num_days: 5,
                ..FleetConfig::tiny()
            },
        );
        let st = StIndex::build(
            network.clone(),
            &dataset,
            &IndexConfig {
                read_latency_us: 0,
                ..Default::default()
            },
        );
        (network, st, center)
    }

    fn query(center: GeoPoint, duration_s: u32, prob: f64) -> SQuery {
        SQuery {
            location: center,
            start_time_s: 9 * 3600,
            duration_s,
            prob,
        }
    }

    #[test]
    fn region_contains_start_and_respects_distance_cap() {
        let (network, st, center) = setup();
        let q = query(center, 300, 0.2);
        let r0 = st.locate_segment(&q.location).unwrap();
        let out = exhaustive_search(&network, &st, &q, r0).unwrap();
        assert!(out.region.contains(r0));
        assert!(out.verifications > 0);
        assert!(out.visited >= out.region.len());
        // Nothing in the region is farther than the free-flow cap.
        let cap_m = q.duration_s as f64 * RoadClass::Highway.free_flow_ms() * 1.1;
        let dist = segment_distances_from(&network, r0, cap_m * 2.0);
        for &seg in &out.region.segments {
            assert!(
                dist.get(&seg).copied().unwrap_or(f64::INFINITY) <= cap_m + 1.0,
                "{seg} beyond the cap"
            );
        }
    }

    #[test]
    fn longer_duration_reaches_at_least_as_much() {
        let (network, st, center) = setup();
        let r0 = st.locate_segment(&center).unwrap();
        let short = exhaustive_search(&network, &st, &query(center, 300, 0.2), r0).unwrap();
        let long = exhaustive_search(&network, &st, &query(center, 1200, 0.2), r0).unwrap();
        assert!(long.region.total_length_km >= short.region.total_length_km);
        assert!(long.region.is_superset_of(&short.region));
    }

    #[test]
    fn higher_probability_gives_smaller_region() {
        let (network, st, center) = setup();
        let r0 = st.locate_segment(&center).unwrap();
        let low = exhaustive_search(&network, &st, &query(center, 900, 0.2), r0).unwrap();
        let high = exhaustive_search(&network, &st, &query(center, 900, 0.9), r0).unwrap();
        assert!(high.region.len() <= low.region.len());
        assert!(low.region.is_superset_of(&high.region));
    }

    #[test]
    fn query_outside_operating_hours_returns_only_start() {
        let (network, st, center) = setup();
        let r0 = st.locate_segment(&center).unwrap();
        let q = SQuery {
            location: center,
            start_time_s: 2 * 3600,
            duration_s: 600,
            prob: 0.2,
        };
        let out = exhaustive_search(&network, &st, &q, r0).unwrap();
        // No trajectories at 02:00 in the tiny fleet, so only the start
        // segment (included by definition) is returned.
        assert_eq!(out.region.segments, vec![r0]);
    }
}
