//! Trace back search (TBS, Algorithm 2).
//!
//! The maximum and minimum bounding regions computed by SQMB/MQMB bound the
//! Prob-reachable region: segments inside the minimum bounding region are
//! reachable even at the historically slowest speeds, segments outside the
//! maximum bounding region cannot be reached even at the fastest. TBS
//! therefore only has to verify the segments *between* the two boundaries,
//! working from the maximum bounding region back toward the minimum one:
//!
//! * a segment whose reachability probability meets `Prob` joins the result,
//! * a segment that fails pushes its not-yet-visited neighbours (excluding
//!   the minimum bounding region) for further investigation,
//! * every segment is marked "visited" the first time it is dequeued so that
//!   overlapping search paths never verify it twice.
//!
//! The returned Prob-reachable region is the minimum bounding region plus
//! every verified segment that met the probability threshold. The expensive
//! step — reading trajectory postings — is never performed for the dense
//! core inside the minimum bounding region, which is where the exhaustive
//! baseline spends most of its I/O.

use std::collections::{HashSet, VecDeque};

use streach_roadnet::{RoadNetwork, SegmentId};

use crate::query::sqmb::BoundingRegions;
use crate::query::verifier::ReachabilityVerifier;
use crate::region::ReachableRegion;

/// Outcome of a trace back search.
pub struct TbsOutcome {
    /// The Prob-reachable region.
    pub region: ReachableRegion,
    /// Number of probability verifications performed (posting reads).
    pub verifications: usize,
    /// Number of segments dequeued by the search.
    pub visited: usize,
}

/// Runs the trace back search for one start segment.
///
/// `verifier` must have been constructed for the same start segment and
/// query window; `bounds` are the SQMB bounding regions of that start.
pub fn trace_back_search(
    network: &RoadNetwork,
    verifier: &mut ReachabilityVerifier<'_>,
    bounds: &BoundingRegions,
    prob: f64,
) -> TbsOutcome {
    let min_set: HashSet<SegmentId> = bounds.min_region.iter().copied().collect();
    let max_set: HashSet<SegmentId> = bounds.max_region.iter().copied().collect();

    // Line 3: B ← Bmax (the segments that still need verification: the
    // annulus between the two bounding regions).
    let mut queue: VecDeque<SegmentId> = bounds.annulus().into();
    let mut visited: HashSet<SegmentId> = HashSet::with_capacity(queue.len());
    let mut result: Vec<SegmentId> = Vec::new();

    let before = verifier.verifications;
    while let Some(r) = queue.pop_front() {
        if !visited.insert(r) {
            continue; // already searched via another path (the "visited" mark)
        }
        if verifier.is_reachable(r, prob) {
            // Line 6-7: r joins the Prob-reachable set.
            result.push(r);
        } else {
            // Line 8-9: investigate r's neighbours that lie closer to the
            // start (still inside the maximum bounding region, outside the
            // minimum bounding region).
            for n in network.neighbors(r) {
                if max_set.contains(&n) && !min_set.contains(&n) && !visited.contains(&n) {
                    queue.push_back(n);
                }
            }
        }
    }

    // Final region: everything reachable even at minimum speed plus the
    // verified annulus segments.
    let mut segments = bounds.min_region.clone();
    segments.extend_from_slice(&result);
    TbsOutcome {
        region: ReachableRegion::from_segments(network, segments),
        verifications: verifier.verifications - before,
        visited: visited.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::query::sqmb::sqmb;
    use crate::speed_stats::SpeedStats;
    use crate::st_index::StIndex;
    use std::sync::Arc;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::{FleetConfig, TrajectoryDataset};

    struct Fixture {
        network: Arc<RoadNetwork>,
        st: StIndex,
        con: crate::con_index::ConIndex,
        start: SegmentId,
    }

    fn setup() -> Fixture {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let center = city.central_point();
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig { num_taxis: 30, num_days: 5, ..FleetConfig::tiny() },
        );
        let config = IndexConfig { read_latency_us: 0, ..Default::default() };
        let st = StIndex::build(network.clone(), &dataset, &config);
        let stats = Arc::new(SpeedStats::from_dataset(&network, &dataset, config.slot_s));
        let con = crate::con_index::ConIndex::new(network.clone(), stats, &config);
        let start = network.nearest_segment(&center).unwrap().0;
        Fixture { network, st, con, start }
    }

    fn run(f: &Fixture, start_time_s: u32, duration_s: u32, prob: f64) -> (TbsOutcome, BoundingRegions) {
        let bounds = sqmb(&f.con, f.network.num_segments(), f.start, start_time_s, duration_s);
        let mut verifier = ReachabilityVerifier::new(&f.st, f.start, start_time_s, duration_s);
        let outcome = trace_back_search(&f.network, &mut verifier, &bounds, prob);
        (outcome, bounds)
    }

    #[test]
    fn region_lies_between_min_and_max_bounds() {
        let f = setup();
        let (outcome, bounds) = run(&f, 9 * 3600, 600, 0.2);
        let max_set: std::collections::HashSet<_> = bounds.max_region.iter().copied().collect();
        for &seg in &outcome.region.segments {
            assert!(max_set.contains(&seg), "{seg} outside the maximum bounding region");
        }
        // The minimum bounding region is always included.
        for seg in &bounds.min_region {
            assert!(outcome.region.contains(*seg));
        }
        assert!(outcome.region.contains(f.start));
    }

    #[test]
    fn verifications_bounded_by_annulus_size() {
        let f = setup();
        let (outcome, bounds) = run(&f, 9 * 3600, 600, 0.2);
        let annulus = bounds.annulus().len();
        assert!(outcome.verifications <= annulus, "verified {} > annulus {}", outcome.verifications, annulus);
        assert!(outcome.visited <= annulus);
        assert!(outcome.verifications > 0, "some verification must happen");
    }

    #[test]
    fn higher_probability_shrinks_the_region() {
        let f = setup();
        let (low, _) = run(&f, 9 * 3600, 900, 0.2);
        let (high, _) = run(&f, 9 * 3600, 900, 0.95);
        assert!(high.region.len() <= low.region.len());
        assert!(low.region.is_superset_of(&high.region));
    }

    #[test]
    fn night_query_collapses_to_minimum_bound() {
        let f = setup();
        // 02:00 — the tiny fleet is idle, so no annulus segment can be verified.
        let (outcome, bounds) = run(&f, 2 * 3600, 600, 0.2);
        assert_eq!(outcome.region.len(), bounds.min_region.len());
    }

    #[test]
    fn duplicate_paths_never_reverify() {
        let f = setup();
        let (outcome, _) = run(&f, 9 * 3600, 900, 0.5);
        // Visited counts unique dequeues; verifications happen once per
        // visited segment at most.
        assert!(outcome.verifications <= outcome.visited);
    }
}
