//! Trace back search (TBS, Algorithm 2).
//!
//! The maximum and minimum bounding regions computed by SQMB/MQMB bound the
//! Prob-reachable region: segments inside the minimum bounding region are
//! reachable even at the historically slowest speeds, segments outside the
//! maximum bounding region cannot be reached even at the fastest. TBS
//! therefore only has to verify the segments *between* the two boundaries.
//!
//! Algorithm 2 phrases this as a queue working from the maximum bounding
//! region back toward the minimum one, but because the queue starts with the
//! *entire* annulus and a failed segment only enqueues annulus neighbours
//! (which are already queued), the fixed point it computes is simply "verify
//! every annulus segment exactly once". This implementation does exactly
//! that — in parallel, since the verifications are independent posting-list
//! intersections: the [`VerifierCore`] is shared read-only across workers
//! and each worker reuses its own [`VerifierScratch`].
//!
//! The returned Prob-reachable region is the minimum bounding region plus
//! every verified segment that met the probability threshold. The expensive
//! step — reading trajectory postings — is never performed for the dense
//! core inside the minimum bounding region, which is where the exhaustive
//! baseline spends most of its I/O.

use streach_roadnet::RoadNetwork;
use streach_storage::StorageResult;

use crate::query::sqmb::BoundingRegions;
use crate::query::verifier::{PostingSource, VerifierCore, VerifierScratch};
use crate::region::ReachableRegion;

/// Outcome of a trace back search.
pub struct TbsOutcome {
    /// The Prob-reachable region.
    pub region: ReachableRegion,
    /// Number of probability verifications performed (posting reads).
    pub verifications: usize,
    /// Number of annulus segments examined by the search.
    pub visited: usize,
}

/// Runs the trace back search for one start segment.
///
/// `core` must have been constructed for the same start segment and query
/// window; `bounds` are the SQMB bounding regions of that start.
///
/// Verification reads postings, so the search is fallible: a storage fault
/// in any worker wins over the batch (`streach_par::try_par_map_with`
/// cancels the remaining verifications cleanly) and no partial region is
/// returned.
pub fn trace_back_search<I: PostingSource + ?Sized>(
    network: &RoadNetwork,
    core: &VerifierCore<'_, I>,
    bounds: &BoundingRegions,
    prob: f64,
) -> StorageResult<TbsOutcome> {
    let annulus = bounds.annulus();
    let passed = streach_par::try_par_map_with(&annulus, VerifierScratch::new, |scratch, seg| {
        core.is_reachable(scratch, *seg, prob)
    })?;

    // Final region: everything reachable even at minimum speed plus the
    // verified annulus segments.
    let mut segments = bounds.min_region.clone();
    segments.extend(
        annulus
            .iter()
            .zip(&passed)
            .filter(|(_, ok)| **ok)
            .map(|(seg, _)| *seg),
    );
    Ok(TbsOutcome {
        region: ReachableRegion::from_segments(network, segments),
        verifications: annulus.len(),
        visited: annulus.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::query::sqmb::sqmb;
    use crate::speed_stats::SpeedStats;
    use crate::st_index::StIndex;
    use std::sync::Arc;
    use streach_roadnet::{GeneratorConfig, SegmentId, SyntheticCity};
    use streach_traj::{FleetConfig, TrajectoryDataset};

    struct Fixture {
        network: Arc<RoadNetwork>,
        st: StIndex,
        con: crate::con_index::ConIndex,
        start: SegmentId,
    }

    fn setup() -> Fixture {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let center = city.central_point();
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig {
                num_taxis: 30,
                num_days: 5,
                ..FleetConfig::tiny()
            },
        );
        let config = IndexConfig {
            read_latency_us: 0,
            ..Default::default()
        };
        let st = StIndex::build(network.clone(), &dataset, &config);
        let stats = Arc::new(SpeedStats::from_dataset(&network, &dataset, config.slot_s));
        let con = crate::con_index::ConIndex::new(network.clone(), stats, &config);
        let start = network.nearest_segment(&center).unwrap().0;
        Fixture {
            network,
            st,
            con,
            start,
        }
    }

    fn run(
        f: &Fixture,
        start_time_s: u32,
        duration_s: u32,
        prob: f64,
    ) -> (TbsOutcome, BoundingRegions) {
        let bounds = sqmb(
            &f.con,
            f.network.num_segments(),
            f.start,
            start_time_s,
            duration_s,
        );
        let core = VerifierCore::new(&f.st, f.start, start_time_s, duration_s).unwrap();
        let outcome = trace_back_search(&f.network, &core, &bounds, prob).unwrap();
        (outcome, bounds)
    }

    #[test]
    fn region_lies_between_min_and_max_bounds() {
        let f = setup();
        let (outcome, bounds) = run(&f, 9 * 3600, 600, 0.2);
        let max_set: std::collections::HashSet<_> = bounds.max_region.iter().copied().collect();
        for &seg in &outcome.region.segments {
            assert!(
                max_set.contains(&seg),
                "{seg} outside the maximum bounding region"
            );
        }
        // The minimum bounding region is always included.
        for seg in &bounds.min_region {
            assert!(outcome.region.contains(*seg));
        }
        assert!(outcome.region.contains(f.start));
    }

    #[test]
    fn verifications_bounded_by_annulus_size() {
        let f = setup();
        let (outcome, bounds) = run(&f, 9 * 3600, 600, 0.2);
        let annulus = bounds.annulus().len();
        assert!(
            outcome.verifications <= annulus,
            "verified {} > annulus {}",
            outcome.verifications,
            annulus
        );
        assert!(outcome.visited <= annulus);
        assert!(outcome.verifications > 0, "some verification must happen");
    }

    #[test]
    fn higher_probability_shrinks_the_region() {
        let f = setup();
        let (low, _) = run(&f, 9 * 3600, 900, 0.2);
        let (high, _) = run(&f, 9 * 3600, 900, 0.95);
        assert!(high.region.len() <= low.region.len());
        assert!(low.region.is_superset_of(&high.region));
    }

    #[test]
    fn night_query_collapses_to_minimum_bound() {
        let f = setup();
        // 02:00 — the tiny fleet is idle, so no annulus segment can be verified.
        let (outcome, bounds) = run(&f, 2 * 3600, 600, 0.2);
        assert_eq!(outcome.region.len(), bounds.min_region.len());
    }

    #[test]
    fn verifications_equal_annulus_exactly_once() {
        let f = setup();
        let (outcome, bounds) = run(&f, 9 * 3600, 900, 0.5);
        // Every annulus segment is verified exactly once, never re-verified.
        assert_eq!(outcome.verifications, bounds.annulus().len());
        assert_eq!(outcome.visited, outcome.verifications);
    }
}
