//! Query types and the query-processing algorithms.
//!
//! * [`SQuery`] / [`MQuery`] — single- and multi-location spatio-temporal
//!   reachability queries `q = (S, T, L, Prob)`,
//! * [`es`] — the exhaustive-search baseline,
//! * [`sqmb`] — the s-query maximum/minimum bounding region search
//!   (Algorithm 1),
//! * [`tbs`] — the trace back search (Algorithm 2),
//! * [`mqmb`] — the m-query maximum bounding region search (Algorithm 3).

pub mod es;
pub mod mqmb;
pub mod reference;
pub mod sqmb;
pub mod tbs;
pub mod verifier;

use streach_geo::GeoPoint;

use crate::region::ReachableRegion;
use crate::stats::QueryStats;

/// A query that cannot be answered — as a value, not a panic, so a serving
/// process survives malformed requests, off-network locations **and disk
/// faults**: every posting read of the query hot path (from
/// [`streach_storage::PageStore`] through
/// [`verifier::VerifierCore::probability`] to
/// [`crate::ReachabilityEngine::try_s_query`] /
/// [`crate::ReachabilityEngine::try_m_query`]) is fallible, so an `EIO`,
/// a truncated page file or a torn page mid-query surfaces as
/// [`QueryError::Storage`] and the engine stays able to serve the next
/// fault-free query. The deterministic fault-injection harness
/// ([`streach_storage::FaultInjectingPageStore`], exercised by
/// `tests/fault_injection.rs`) drives every pipeline through scripted
/// failures to keep that guarantee honest.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query parameters are invalid (zero duration, probability outside
    /// `(0, 1]`, non-finite location, start time outside the day).
    InvalidQuery(String),
    /// A query location could not be matched to any road segment.
    LocationOffNetwork {
        /// Index of the offending location (always 0 for an s-query).
        index: usize,
        /// The location that failed to match.
        location: GeoPoint,
    },
    /// A posting read failed at the storage layer mid-query: a disk fault
    /// (EIO, truncation after open) or corrupted posting bytes (torn or
    /// zeroed page under a range-valid handle). Carries the faulting page
    /// id when the storage layer attributed one, plus the backend context.
    /// The query did **not** produce a region — a partial verification is
    /// never returned as if it were complete.
    Storage {
        /// Page id of the failed read, when known.
        page: Option<u64>,
        /// Rendered description of the underlying storage failure,
        /// including the backend it was reading from.
        context: String,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::InvalidQuery(reason) => write!(f, "invalid query: {reason}"),
            QueryError::LocationOffNetwork { index, location } => write!(
                f,
                "query location #{index} ({:.5}, {:.5}) cannot be matched to the road network",
                location.lon, location.lat
            ),
            QueryError::Storage { page, context } => match page {
                Some(page) => write!(f, "storage fault on page {page} mid-query: {context}"),
                None => write!(f, "storage fault mid-query: {context}"),
            },
        }
    }
}

impl std::error::Error for QueryError {}

impl From<streach_storage::StorageError> for QueryError {
    fn from(e: streach_storage::StorageError) -> Self {
        QueryError::Storage {
            page: e.page_id(),
            context: e.to_string(),
        }
    }
}

/// A single-location spatio-temporal reachability query
/// `q = (S, T, L, Prob)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SQuery {
    /// The query location `S = {s}`.
    pub location: GeoPoint,
    /// Start time `T`, in seconds after midnight.
    pub start_time_s: u32,
    /// Duration `L` in seconds.
    pub duration_s: u32,
    /// Reachability probability threshold `Prob ∈ (0, 1]`.
    pub prob: f64,
}

impl SQuery {
    /// End of the query window `T + L`. Values past the day length indicate
    /// a cross-midnight window, which the engine evaluates with wrap-around
    /// slot semantics (the day is treated as circular, like the indexes do).
    pub fn end_time_s(&self) -> u32 {
        self.start_time_s + self.duration_s
    }

    /// Validates the query parameters.
    pub fn validate(&self) -> Result<(), QueryError> {
        if !self.location.is_finite() {
            return Err(QueryError::InvalidQuery(
                "query location must be finite".into(),
            ));
        }
        if self.duration_s == 0 {
            return Err(QueryError::InvalidQuery(
                "query duration must be positive".into(),
            ));
        }
        if !(0.0 < self.prob && self.prob <= 1.0) {
            return Err(QueryError::InvalidQuery(format!(
                "probability must be in (0, 1], got {}",
                self.prob
            )));
        }
        if self.start_time_s >= streach_traj::SECONDS_PER_DAY {
            return Err(QueryError::InvalidQuery(
                "start time must be within one day".into(),
            ));
        }
        Ok(())
    }
}

/// A multi-location spatio-temporal reachability query
/// `q = ({s1, …, sn}, T, L, Prob)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MQuery {
    /// The query locations `S = {s1, …, sn}`.
    pub locations: Vec<GeoPoint>,
    /// Start time `T`, in seconds after midnight.
    pub start_time_s: u32,
    /// Duration `L` in seconds.
    pub duration_s: u32,
    /// Reachability probability threshold `Prob ∈ (0, 1]`.
    pub prob: f64,
}

impl MQuery {
    /// The s-query obtained by restricting this m-query to one location.
    pub fn sub_query(&self, index: usize) -> SQuery {
        SQuery {
            location: self.locations[index],
            start_time_s: self.start_time_s,
            duration_s: self.duration_s,
            prob: self.prob,
        }
    }

    /// Validates the query parameters.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.locations.is_empty() {
            return Err(QueryError::InvalidQuery(
                "an m-query needs at least one location".into(),
            ));
        }
        for (i, _) in self.locations.iter().enumerate() {
            self.sub_query(i).validate()?;
        }
        Ok(())
    }
}

/// Which algorithm answers an s-query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The exhaustive-search baseline (network expansion + per-segment
    /// verification).
    ExhaustiveSearch,
    /// The paper's SQMB bounding-region search followed by trace back search.
    SqmbTbs,
}

/// Which algorithm answers an m-query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MQueryAlgorithm {
    /// Answer each location as an independent s-query (SQMB+TBS) and union
    /// the results — the baseline of Section 4.3.
    RepeatedSQuery,
    /// The paper's MQMB bounding-region search with overlap elimination,
    /// followed by a single trace back search.
    MqmbTbs,
}

/// The answer to a query: the Prob-reachable region plus measurements.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The Prob-reachable region.
    pub region: ReachableRegion,
    /// Runtime / I/O statistics.
    pub stats: QueryStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_query() -> SQuery {
        SQuery {
            location: GeoPoint::new(114.0, 22.5),
            start_time_s: 11 * 3600,
            duration_s: 600,
            prob: 0.2,
        }
    }

    #[test]
    fn squery_validation() {
        assert!(base_query().validate().is_ok());
        assert!(SQuery {
            duration_s: 0,
            ..base_query()
        }
        .validate()
        .is_err());
        assert!(SQuery {
            prob: 0.0,
            ..base_query()
        }
        .validate()
        .is_err());
        assert!(SQuery {
            prob: 1.5,
            ..base_query()
        }
        .validate()
        .is_err());
        assert!(SQuery {
            start_time_s: 90_000,
            ..base_query()
        }
        .validate()
        .is_err());
        assert!(SQuery {
            location: GeoPoint::new(f64::NAN, 0.0),
            ..base_query()
        }
        .validate()
        .is_err());
        assert!(SQuery {
            prob: 1.0,
            ..base_query()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn squery_end_time_may_cross_midnight() {
        let q = SQuery {
            start_time_s: 23 * 3600 + 3000,
            duration_s: 3600,
            ..base_query()
        };
        assert_eq!(q.end_time_s(), 23 * 3600 + 3000 + 3600);
        assert!(q.end_time_s() > streach_traj::SECONDS_PER_DAY);
        assert_eq!(base_query().end_time_s(), 11 * 3600 + 600);
    }

    #[test]
    fn mquery_validation_and_subqueries() {
        let m = MQuery {
            locations: vec![GeoPoint::new(114.0, 22.5), GeoPoint::new(114.05, 22.55)],
            start_time_s: 10 * 3600,
            duration_s: 1200,
            prob: 0.2,
        };
        assert!(m.validate().is_ok());
        let s1 = m.sub_query(1);
        assert_eq!(s1.location, m.locations[1]);
        assert_eq!(s1.duration_s, 1200);

        let empty = MQuery {
            locations: vec![],
            ..m.clone()
        };
        assert!(empty.validate().is_err());
        let bad = MQuery { prob: -0.1, ..m };
        assert!(bad.validate().is_err());
    }
}
