//! Reachability-probability verification against the ST-Index.
//!
//! Both the exhaustive-search baseline and the trace back search decide
//! whether a road segment `r` belongs to the Prob-reachable region by
//! checking, for every day `d`, whether some trajectory passed the start
//! segment `r0` during `[T, T + Δt]` *and* passed `r` during `[T, T + L]`
//! (Eq. 3.1):
//!
//! ```text
//! probability(r, r0) = m* / m
//! where m* = #{ d : Tr(r0, T0, d) ∩ Tr(r, TB, d) ≠ ∅ }
//! ```
//!
//! Every verification reads the time lists of `r` for the slots overlapping
//! `[T, T + L]` from the posting store — this is exactly the disk I/O the
//! Con-Index pruning tries to minimise.

use std::collections::HashMap;

use streach_roadnet::SegmentId;

use crate::st_index::StIndex;
use crate::time::slots_overlapping;

/// A reusable verifier for one (start segment, T, Δt, L) combination.
pub struct ReachabilityVerifier<'a> {
    st_index: &'a StIndex,
    /// Trajectory IDs that passed the start segment during `[T, T + Δt)`,
    /// per date (sorted).
    start_ids_by_day: HashMap<u16, Vec<u32>>,
    /// Query window `[T, T + L)`.
    window: (u32, u32),
    num_days: u16,
    /// Number of probability evaluations performed.
    pub verifications: usize,
}

/// Reads the per-day trajectory IDs of `segment` over `[start_s, end_s)`.
fn ids_by_day(st_index: &StIndex, segment: SegmentId, start_s: u32, end_s: u32) -> HashMap<u16, Vec<u32>> {
    let mut map: HashMap<u16, Vec<u32>> = HashMap::new();
    for slot in slots_overlapping(start_s, end_s, st_index.slot_s()) {
        if let Some(list) = st_index.time_list(segment, slot) {
            for entry in &list.entries {
                map.entry(entry.date).or_default().extend_from_slice(&entry.traj_ids);
            }
        }
    }
    for ids in map.values_mut() {
        ids.sort_unstable();
        ids.dedup();
    }
    map
}

/// Returns `true` if the two sorted slices share an element.
fn sorted_intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

impl<'a> ReachabilityVerifier<'a> {
    /// Builds a verifier for queries starting from `start_segment` at time
    /// `start_time_s`, with query duration `duration_s`.
    ///
    /// `Tr(r0, T0, d)` is extracted once here (T0 = `[T, T + Δt)`), which is
    /// the first step of the trace back search.
    pub fn new(
        st_index: &'a StIndex,
        start_segment: SegmentId,
        start_time_s: u32,
        duration_s: u32,
    ) -> Self {
        let slot_s = st_index.slot_s();
        let t0_end = start_time_s.saturating_add(slot_s).min(streach_traj::SECONDS_PER_DAY);
        let end = start_time_s
            .saturating_add(duration_s)
            .min(streach_traj::SECONDS_PER_DAY);
        let start_ids_by_day = ids_by_day(st_index, start_segment, start_time_s, t0_end);
        Self {
            st_index,
            start_ids_by_day,
            window: (start_time_s, end),
            num_days: st_index.num_days(),
            verifications: 0,
        }
    }

    /// Number of days on which at least one trajectory passed the start
    /// segment during `[T, T + Δt)`.
    pub fn active_days(&self) -> usize {
        self.start_ids_by_day.len()
    }

    /// The reachable probability `probability(r, r0)` of Eq. 3.1.
    pub fn probability(&mut self, segment: SegmentId) -> f64 {
        self.verifications += 1;
        if self.num_days == 0 || self.start_ids_by_day.is_empty() {
            return 0.0;
        }
        let target_ids = ids_by_day(self.st_index, segment, self.window.0, self.window.1);
        if target_ids.is_empty() {
            return 0.0;
        }
        let mut matching_days = 0u32;
        for (date, start_ids) in &self.start_ids_by_day {
            if let Some(ids) = target_ids.get(date) {
                if sorted_intersects(start_ids, ids) {
                    matching_days += 1;
                }
            }
        }
        matching_days as f64 / self.num_days as f64
    }

    /// Convenience: `probability(segment) >= prob`.
    pub fn is_reachable(&mut self, segment: SegmentId, prob: f64) -> bool {
        self.probability(segment) >= prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use std::sync::Arc;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::{FleetConfig, TrajectoryDataset};

    fn build() -> (Arc<streach_roadnet::RoadNetwork>, TrajectoryDataset, StIndex) {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig { num_taxis: 15, num_days: 4, ..FleetConfig::tiny() },
        );
        let st = StIndex::build(network.clone(), &dataset, &IndexConfig { read_latency_us: 0, ..Default::default() });
        (network, dataset, st)
    }

    #[test]
    fn sorted_intersects_cases() {
        assert!(sorted_intersects(&[1, 3, 5], &[5, 7]));
        assert!(sorted_intersects(&[1, 3, 5], &[0, 1]));
        assert!(!sorted_intersects(&[1, 3, 5], &[2, 4, 6]));
        assert!(!sorted_intersects(&[], &[1]));
        assert!(!sorted_intersects(&[], &[]));
    }

    #[test]
    fn start_segment_reaches_itself_with_full_probability_of_active_days() {
        let (_, dataset, st) = build();
        // Pick a (segment, time) straight out of the data so it is active.
        let traj = &dataset.trajectories()[0];
        let visit = traj.visits[0];
        let mut v = ReachabilityVerifier::new(&st, visit.segment, visit.enter_time_s, 600);
        assert!(v.active_days() >= 1);
        let p = v.probability(visit.segment);
        assert!(p > 0.0, "start segment must be reachable from itself on active days");
        assert_eq!(v.verifications, 1);
        assert!(p <= 1.0);
        // Probability equals active days / m when the start segment is the target.
        assert!((p - v.active_days() as f64 / dataset.num_days() as f64).abs() < 1e-9);
    }

    #[test]
    fn unvisited_time_gives_zero_probability() {
        let (network, _, st) = build();
        let seg = network.segment_ids().next().unwrap();
        // 02:00: the tiny fleet does not operate, so no trajectory passes r0.
        let mut v = ReachabilityVerifier::new(&st, seg, 2 * 3600, 600);
        assert_eq!(v.active_days(), 0);
        assert_eq!(v.probability(seg), 0.0);
    }

    #[test]
    fn probability_monotone_in_duration() {
        let (_, dataset, st) = build();
        let traj = &dataset.trajectories()[0];
        let start = traj.visits[0];
        // A segment the same trajectory visits a bit later.
        let later = traj.visits[traj.visits.len().min(8) - 1];
        let mut short = ReachabilityVerifier::new(&st, start.segment, start.enter_time_s, 120);
        let mut long = ReachabilityVerifier::new(&st, start.segment, start.enter_time_s, 3600);
        let p_short = short.probability(later.segment);
        let p_long = long.probability(later.segment);
        assert!(p_long >= p_short, "longer duration cannot lower the probability");
        assert!(p_long > 0.0, "the trajectory itself reaches the later segment");
    }

    #[test]
    fn nearby_segments_more_probable_than_far_ones() {
        let (network, dataset, st) = build();
        // Use the busiest segment at 09:00 as the start.
        let slot = crate::time::slot_of(9 * 3600, st.slot_s());
        let start = network
            .segment_ids()
            .max_by_key(|s| st.time_list(*s, slot).map(|l| l.num_observations()).unwrap_or(0))
            .unwrap();
        let mut v = ReachabilityVerifier::new(&st, start, 9 * 3600, 900);
        let neighbor_prob: f64 = network
            .successors(start)
            .iter()
            .map(|s| v.probability(*s))
            .fold(0.0, f64::max);
        // A far-away corner segment is very unlikely to be reached in 15 minutes.
        let bounds = network.bounds();
        let corner = network
            .nearest_segment(&streach_geo::GeoPoint::new(bounds.min_lon, bounds.min_lat))
            .unwrap()
            .0;
        let corner_prob = v.probability(corner);
        assert!(
            neighbor_prob >= corner_prob,
            "neighbor {neighbor_prob} vs corner {corner_prob}"
        );
        let _ = dataset;
    }
}
