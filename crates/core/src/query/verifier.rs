//! Reachability-probability verification against the ST-Index.
//!
//! Both the exhaustive-search baseline and the trace back search decide
//! whether a road segment `r` belongs to the Prob-reachable region by
//! checking, for every day `d`, whether some trajectory passed the start
//! segment `r0` during `[T, T + Δt]` *and* passed `r` during `[T, T + L]`
//! (Eq. 3.1):
//!
//! ```text
//! probability(r, r0) = m* / m
//! where m* = #{ d : Tr(r0, T0, d) ∩ Tr(r, TB, d) ≠ ∅ }
//! ```
//!
//! Every verification reads the time lists of `r` for the slots overlapping
//! `[T, T + L)` from the posting store — this is exactly the disk I/O the
//! Con-Index pruning tries to minimise. Because a query verifies hundreds of
//! candidate segments, this module is built for a *zero-allocation steady
//! state*:
//!
//! * [`VerifierCore`] holds everything immutable per query: the start
//!   segment's trajectory IDs as a **day-indexed** table (`Vec` indexed by
//!   `date as usize`, each day pre-sorted and deduplicated at construction),
//!   plus the window's slot range. It is freely shared across threads.
//! * [`VerifierScratch`] holds the per-worker mutable state: a day-indexed
//!   candidate-ID table, the list of days touched by the current call, and
//!   the raw posting byte buffer. All of it is recycled between calls, so
//!   after the first few verifications a `probability` call performs **no
//!   heap allocation** — postings are copied into the reusable byte buffer
//!   via [`StIndex::read_time_list_into`] and decoded in place with
//!   [`streach_storage::visit_posting`] (the encoding-aware walker: raw
//!   fixed-width and delta/varint blobs take the same zero-allocation path).
//!
//! [`ReachabilityVerifier`] bundles one core with one scratch for the
//! sequential call sites; parallel call sites share one core across workers
//! and give each worker its own scratch (see `streach_par::par_map_with`).

use std::sync::Arc;

use streach_roadnet::SegmentId;
use streach_storage::{visit_posting, IoStats, PostingEncoding, StorageError, StorageResult};

use crate::st_index::StIndex;
use crate::time::slots_overlapping;

/// The read-side surface the verifiers need from a posting index.
///
/// This is exactly the set of [`StIndex`] methods the verification hot path
/// touches — nothing about building, ingest, or compaction. [`StIndex`] is
/// the canonical implementation; a sharded deployment implements it with a
/// router that resolves each `(segment, slot)` read against the shard (and
/// replica) owning that segment, so the zero-allocation verify loop is
/// oblivious to the topology behind it.
pub trait PostingSource: Sync {
    /// Slot width in seconds of the underlying index.
    fn slot_s(&self) -> u32;

    /// Number of observed days (the denominator `m` of Eq. 3.1).
    fn num_days(&self) -> u16;

    /// Wire encoding of the posting heaps.
    fn posting_encoding(&self) -> PostingEncoding;

    /// Shared I/O counters that posting decodes are reported against.
    fn io_stats(&self) -> Arc<IoStats>;

    /// Copies the encoded time list for `(segment, slot)` into `buf`.
    /// Returns `Ok(false)` when no posting exists for the pair.
    fn read_time_list_into(
        &self,
        segment: SegmentId,
        slot: u32,
        buf: &mut Vec<u8>,
    ) -> StorageResult<bool>;

    /// The typed error describing a structurally invalid posting at
    /// `(segment, slot)`.
    fn malformed_posting(&self, segment: SegmentId, slot: u32) -> StorageError;
}

/// The immutable, shareable half of a verifier: one (start segment, T, Δt, L)
/// combination.
pub struct VerifierCore<'a, I: PostingSource + ?Sized = StIndex> {
    st_index: &'a I,
    /// Trajectory IDs that passed the start segment during `[T, T + Δt)`,
    /// indexed by date (sorted + deduplicated; empty = day inactive).
    start_ids: Vec<Vec<u32>>,
    /// Number of days with a non-empty start list.
    active_days: usize,
    /// Slots overlapping the query window `[T, T + L)`, wrapping past
    /// midnight (the same circular-day semantics the indexes use).
    window_slots: crate::time::SlotWindow,
    /// Query window `[T, T + L)`; the end may exceed the day length, in
    /// which case the window wraps.
    window: (u32, u32),
    num_days: u16,
    /// Wire encoding of the posting heaps, fetched once at construction so
    /// the per-verification hot loop never touches the index lock for it.
    encoding: PostingEncoding,
    /// Shared I/O counters: every posting visited here reports its decoded
    /// (fixed-width-equivalent) vs resident (stored) byte counts, making the
    /// compression win observable per query.
    io: Arc<IoStats>,
}

/// The reusable per-worker mutable half of a verifier.
///
/// All buffers grow to their high-water mark and are then recycled: clearing
/// a `Vec` keeps its capacity, and only the days touched by the previous call
/// are cleared (tracked in `touched`), so reset cost is proportional to the
/// work actually done.
#[derive(Default)]
pub struct VerifierScratch {
    /// Candidate segment's trajectory IDs, indexed by date.
    target_ids: Vec<Vec<u32>>,
    /// Days with a non-empty `target_ids` entry in the current call.
    touched: Vec<u16>,
    /// Raw encoded time-list bytes of the posting being visited.
    bytes: Vec<u8>,
    /// Number of probability evaluations performed with this scratch.
    pub verifications: usize,
}

impl VerifierScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Returns `true` if the two sorted slices share an element (duplicates are
/// permitted; order is what matters).
fn sorted_intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

impl<'a, I: PostingSource + ?Sized> VerifierCore<'a, I> {
    /// Builds the shared core for queries starting from `start_segment` at
    /// time `start_time_s`, with query duration `duration_s`.
    ///
    /// `Tr(r0, T0, d)` is extracted once here (T0 = `[T, T + Δt)`), which is
    /// the first step of the trace back search. The start segment's posting
    /// reads are real page I/O, so construction is fallible: a disk fault or
    /// malformed posting surfaces as `Err` instead of aborting the process.
    pub fn new(
        st_index: &'a I,
        start_segment: SegmentId,
        start_time_s: u32,
        duration_s: u32,
    ) -> StorageResult<Self> {
        let slot_s = st_index.slot_s();
        let num_days = st_index.num_days();
        // Windows wrap past midnight instead of clamping: the bounding phase
        // (SQMB / Con-Index) has always used modular slot arithmetic, and the
        // verifier must read exactly the slots the bounds were computed over.
        let t0_end = start_time_s.saturating_add(slot_s);
        let end = start_time_s.saturating_add(duration_s);

        let encoding = st_index.posting_encoding();
        let io = st_index.io_stats();
        let mut start_ids: Vec<Vec<u32>> = vec![Vec::new(); num_days as usize];
        let mut bytes = Vec::new();
        for slot in slots_overlapping(start_time_s, t0_end, slot_s) {
            if st_index.read_time_list_into(start_segment, slot, &mut bytes)? {
                let (mut dates, mut ids_seen) = (0u64, 0u64);
                let well_formed = visit_posting(&bytes, encoding, |date, ids| {
                    dates += 1;
                    ids_seen += ids.len() as u64;
                    if let Some(day) = start_ids.get_mut(date as usize) {
                        day.extend(ids);
                    }
                });
                if !well_formed {
                    return Err(st_index.malformed_posting(start_segment, slot));
                }
                io.record_posting_decode(4 + dates * 6 + ids_seen * 4, bytes.len() as u64);
            }
        }
        let mut active_days = 0;
        for day in &mut start_ids {
            if !day.is_empty() {
                day.sort_unstable();
                day.dedup();
                active_days += 1;
            }
        }

        Ok(Self {
            st_index,
            start_ids,
            active_days,
            window_slots: slots_overlapping(start_time_s, end, slot_s),
            window: (start_time_s, end),
            num_days,
            encoding,
            io,
        })
    }

    /// Number of days on which at least one trajectory passed the start
    /// segment during `[T, T + Δt)`.
    pub fn active_days(&self) -> usize {
        self.active_days
    }

    /// The query window `[T, T + L)`.
    pub fn window(&self) -> (u32, u32) {
        self.window
    }

    /// The reachable probability `probability(r, r0)` of Eq. 3.1.
    ///
    /// Steady-state calls perform no heap allocation: posting bytes land in
    /// `scratch.bytes`, per-day candidate IDs accumulate in the recycled
    /// day-indexed table, and the intersection test runs over sorted slices.
    ///
    /// Every call reads postings, so the result is a [`StorageResult`]: a
    /// disk fault (`EIO`, truncation after open) or a structurally invalid
    /// posting (torn/zeroed page) is reported as `Err` — never a panic, and
    /// never a silently wrong probability computed from a partial read.
    pub fn probability(
        &self,
        scratch: &mut VerifierScratch,
        segment: SegmentId,
    ) -> StorageResult<f64> {
        scratch.verifications += 1;
        if self.num_days == 0 || self.active_days == 0 {
            return Ok(0.0);
        }
        // Recycle the scratch table: clear only the previously touched days.
        if scratch.target_ids.len() < self.num_days as usize {
            scratch
                .target_ids
                .resize_with(self.num_days as usize, Vec::new);
        }
        for &day in &scratch.touched {
            scratch.target_ids[day as usize].clear();
        }
        scratch.touched.clear();

        // One posting read per (segment, slot) of the window; each entry's
        // IDs go straight into the day bucket. Days on which the start
        // segment saw no trajectory cannot contribute to m* and are skipped
        // before any copying happens.
        let touched = &mut scratch.touched;
        let target_ids = &mut scratch.target_ids;
        for slot in self.window_slots.clone() {
            if self
                .st_index
                .read_time_list_into(segment, slot, &mut scratch.bytes)?
            {
                let (mut dates, mut ids_seen) = (0u64, 0u64);
                let well_formed = visit_posting(&scratch.bytes, self.encoding, |date, ids| {
                    dates += 1;
                    ids_seen += ids.len() as u64;
                    let day = date as usize;
                    if day < self.start_ids.len() && !self.start_ids[day].is_empty() {
                        let bucket = &mut target_ids[day];
                        if bucket.is_empty() {
                            touched.push(date);
                        }
                        bucket.extend(ids);
                    }
                });
                if !well_formed {
                    return Err(self.st_index.malformed_posting(segment, slot));
                }
                self.io.record_posting_decode(
                    4 + dates * 6 + ids_seen * 4,
                    scratch.bytes.len() as u64,
                );
            }
        }
        if scratch.touched.is_empty() {
            return Ok(0.0);
        }

        let mut matching_days = 0u32;
        for &date in &scratch.touched {
            let bucket = &mut scratch.target_ids[date as usize];
            // A single slot contributes a sorted run; multi-slot windows can
            // interleave runs, so restore sortedness only when violated.
            // (`sorted_intersects` tolerates duplicates, so no dedup needed.)
            if !bucket.is_sorted() {
                bucket.sort_unstable();
            }
            if sorted_intersects(&self.start_ids[date as usize], bucket) {
                matching_days += 1;
            }
        }
        Ok(matching_days as f64 / self.num_days as f64)
    }

    /// Convenience: `probability(segment) >= prob`.
    pub fn is_reachable(
        &self,
        scratch: &mut VerifierScratch,
        segment: SegmentId,
        prob: f64,
    ) -> StorageResult<bool> {
        Ok(self.probability(scratch, segment)? >= prob)
    }
}

/// A reusable verifier for one (start segment, T, Δt, L) combination:
/// a [`VerifierCore`] bundled with one [`VerifierScratch`] for sequential
/// call sites.
pub struct ReachabilityVerifier<'a, I: PostingSource + ?Sized = StIndex> {
    core: VerifierCore<'a, I>,
    scratch: VerifierScratch,
}

impl<'a, I: PostingSource + ?Sized> ReachabilityVerifier<'a, I> {
    /// Builds a verifier for queries starting from `start_segment` at time
    /// `start_time_s`, with query duration `duration_s`. Fallible for the
    /// same reason [`VerifierCore::new`] is: the start segment's postings
    /// are read here.
    pub fn new(
        st_index: &'a I,
        start_segment: SegmentId,
        start_time_s: u32,
        duration_s: u32,
    ) -> StorageResult<Self> {
        Ok(Self {
            core: VerifierCore::new(st_index, start_segment, start_time_s, duration_s)?,
            scratch: VerifierScratch::new(),
        })
    }

    /// The shareable immutable half (for parallel verification, pair it with
    /// one [`VerifierScratch`] per worker).
    pub fn core(&self) -> &VerifierCore<'a, I> {
        &self.core
    }

    /// Number of days on which at least one trajectory passed the start
    /// segment during `[T, T + Δt)`.
    pub fn active_days(&self) -> usize {
        self.core.active_days()
    }

    /// Number of probability evaluations performed.
    pub fn verifications(&self) -> usize {
        self.scratch.verifications
    }

    /// The reachable probability `probability(r, r0)` of Eq. 3.1.
    pub fn probability(&mut self, segment: SegmentId) -> StorageResult<f64> {
        self.core.probability(&mut self.scratch, segment)
    }

    /// Convenience: `probability(segment) >= prob`.
    pub fn is_reachable(&mut self, segment: SegmentId, prob: f64) -> StorageResult<bool> {
        Ok(self.probability(segment)? >= prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use std::sync::Arc;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::{FleetConfig, TrajectoryDataset};

    fn build() -> (
        Arc<streach_roadnet::RoadNetwork>,
        TrajectoryDataset,
        StIndex,
    ) {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig {
                num_taxis: 15,
                num_days: 4,
                ..FleetConfig::tiny()
            },
        );
        let st = StIndex::build(
            network.clone(),
            &dataset,
            &IndexConfig {
                read_latency_us: 0,
                ..Default::default()
            },
        );
        (network, dataset, st)
    }

    #[test]
    fn sorted_intersects_cases() {
        assert!(sorted_intersects(&[1, 3, 5], &[5, 7]));
        assert!(sorted_intersects(&[1, 3, 5], &[0, 1]));
        assert!(!sorted_intersects(&[1, 3, 5], &[2, 4, 6]));
        assert!(!sorted_intersects(&[], &[1]));
        assert!(!sorted_intersects(&[], &[]));
        // Duplicates are fine — the inputs are sorted, not necessarily unique.
        assert!(sorted_intersects(&[2, 2, 4], &[1, 2, 2]));
    }

    #[test]
    fn start_segment_reaches_itself_with_full_probability_of_active_days() {
        let (_, dataset, st) = build();
        // Pick a (segment, time) straight out of the data so it is active.
        let traj = &dataset.trajectories()[0];
        let visit = traj.visits[0];
        let mut v = ReachabilityVerifier::new(&st, visit.segment, visit.enter_time_s, 600).unwrap();
        assert!(v.active_days() >= 1);
        let p = v.probability(visit.segment).unwrap();
        assert!(
            p > 0.0,
            "start segment must be reachable from itself on active days"
        );
        assert_eq!(v.verifications(), 1);
        assert!(p <= 1.0);
        // Probability equals active days / m when the start segment is the target.
        assert!((p - v.active_days() as f64 / dataset.num_days() as f64).abs() < 1e-9);
    }

    #[test]
    fn unvisited_time_gives_zero_probability() {
        let (network, _, st) = build();
        let seg = network.segment_ids().next().unwrap();
        // 02:00: the tiny fleet does not operate, so no trajectory passes r0.
        let mut v = ReachabilityVerifier::new(&st, seg, 2 * 3600, 600).unwrap();
        assert_eq!(v.active_days(), 0);
        assert_eq!(v.probability(seg).unwrap(), 0.0);
    }

    #[test]
    fn probability_monotone_in_duration() {
        let (_, dataset, st) = build();
        let traj = &dataset.trajectories()[0];
        let start = traj.visits[0];
        // A segment the same trajectory visits a bit later.
        let later = traj.visits[traj.visits.len().min(8) - 1];
        let mut short =
            ReachabilityVerifier::new(&st, start.segment, start.enter_time_s, 120).unwrap();
        let mut long =
            ReachabilityVerifier::new(&st, start.segment, start.enter_time_s, 3600).unwrap();
        let p_short = short.probability(later.segment).unwrap();
        let p_long = long.probability(later.segment).unwrap();
        assert!(
            p_long >= p_short,
            "longer duration cannot lower the probability"
        );
        assert!(
            p_long > 0.0,
            "the trajectory itself reaches the later segment"
        );
    }

    #[test]
    fn nearby_segments_more_probable_than_far_ones() {
        let (network, dataset, st) = build();
        // Use the busiest segment at 09:00 as the start.
        let slot = crate::time::slot_of(9 * 3600, st.slot_s());
        let start = network
            .segment_ids()
            .max_by_key(|s| {
                st.time_list(*s, slot)
                    .unwrap()
                    .map(|l| l.num_observations())
                    .unwrap_or(0)
            })
            .unwrap();
        let mut v = ReachabilityVerifier::new(&st, start, 9 * 3600, 900).unwrap();
        let neighbor_prob: f64 = network
            .successors(start)
            .iter()
            .map(|s| v.probability(*s).unwrap())
            .fold(0.0, f64::max);
        // A far-away corner segment is very unlikely to be reached in 15 minutes.
        let bounds = network.bounds();
        let corner = network
            .nearest_segment(&streach_geo::GeoPoint::new(bounds.min_lon, bounds.min_lat))
            .unwrap()
            .0;
        let corner_prob = v.probability(corner).unwrap();
        assert!(
            neighbor_prob >= corner_prob,
            "neighbor {neighbor_prob} vs corner {corner_prob}"
        );
        let _ = dataset;
    }

    #[test]
    fn shared_core_gives_identical_answers_across_scratches() {
        let (network, dataset, st) = build();
        let traj = &dataset.trajectories()[0];
        let visit = traj.visits[0];
        let core = VerifierCore::new(&st, visit.segment, visit.enter_time_s, 900).unwrap();
        let mut a = VerifierScratch::new();
        let mut b = VerifierScratch::new();
        for seg in network.segment_ids().take(100) {
            let pa = core.probability(&mut a, seg).unwrap();
            let pb = core.probability(&mut b, seg).unwrap();
            assert_eq!(pa, pb, "segment {seg}");
        }
        // Interleaved reuse of one scratch matches a fresh scratch per call.
        for seg in network.segment_ids().take(50) {
            let fresh = core.probability(&mut VerifierScratch::new(), seg).unwrap();
            let reused = core.probability(&mut a, seg).unwrap();
            assert_eq!(fresh, reused, "segment {seg}");
        }
    }
}
