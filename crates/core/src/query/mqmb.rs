//! M-query maximum/minimum bounding region search (MQMB, Algorithm 3) and
//! the multi-location trace back search built on top of it.
//!
//! An m-query with `n` start locations could be answered by `n` independent
//! s-queries, but road segments in the overlap of several bounding regions
//! would then be verified (and their postings read) up to `n` times. MQMB
//! grows a *unified* bounding region instead: in every Con-Index hop, a newly
//! reached segment is kept only if the start location whose expansion reached
//! it is also the nearest start location (`rs = argmin dis(r0, b)`), so every
//! segment is owned by exactly one start location and verified exactly once.

use std::collections::HashMap;

use streach_geo::GeoPoint;
use streach_roadnet::{RoadNetwork, SegmentId};

use crate::con_index::ConIndex;
use crate::query::sqmb::num_hops;
use crate::query::verifier::ReachabilityVerifier;
use crate::region::ReachableRegion;
use crate::st_index::StIndex;
use crate::time::slot_of;

/// Unified bounding regions of an m-query.
#[derive(Debug, Clone)]
pub struct MqmbBounds {
    /// Unified maximum bounding region (sorted).
    pub max_region: Vec<SegmentId>,
    /// Unified minimum bounding region (sorted).
    pub min_region: Vec<SegmentId>,
    /// For every segment of the maximum bounding region, the index of the
    /// start location that owns it.
    pub owner: HashMap<SegmentId, usize>,
}

impl MqmbBounds {
    /// Segments of the maximum bounding region outside the minimum one.
    pub fn annulus(&self) -> Vec<SegmentId> {
        let mut out = Vec::with_capacity(self.max_region.len());
        let mut i = 0;
        for &seg in &self.max_region {
            while i < self.min_region.len() && self.min_region[i] < seg {
                i += 1;
            }
            if i >= self.min_region.len() || self.min_region[i] != seg {
                out.push(seg);
            }
        }
        out
    }
}

/// Midpoint of a segment's geometry, used for the `dis(r0, b)` comparisons.
fn segment_midpoint(network: &RoadNetwork, seg: SegmentId) -> GeoPoint {
    network.segment(seg).geometry.point_at_fraction(0.5)
}

/// Index of the start location nearest to `p`.
fn nearest_start(start_points: &[GeoPoint], p: &GeoPoint) -> usize {
    start_points
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1.fast_distance_m(p)
                .partial_cmp(&b.1.fast_distance_m(p))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
        .expect("at least one start location")
}

fn expand(
    con_index: &ConIndex,
    network: &RoadNetwork,
    starts: &[SegmentId],
    start_points: &[GeoPoint],
    start_time_s: u32,
    duration_s: u32,
    use_far: bool,
) -> (Vec<SegmentId>, HashMap<SegmentId, usize>) {
    let slot_s = con_index.slot_s();
    let k = num_hops(duration_s, slot_s);
    let mut owner: HashMap<SegmentId, usize> = HashMap::new();
    let mut bounding: Vec<SegmentId> = Vec::new();
    for (i, &s) in starts.iter().enumerate() {
        if let std::collections::hash_map::Entry::Vacant(e) = owner.entry(s) {
            e.insert(i);
            bounding.push(s);
        }
    }

    for step in 0..k {
        let slot = slot_of(start_time_s.saturating_add(step * slot_s), slot_s);
        let table = con_index.slot_table(slot);
        let snapshot_len = bounding.len();
        for idx in 0..snapshot_len {
            let r = bounding[idx];
            let owner_r = owner[&r];
            let list = if use_far { table.far(r) } else { table.near(r) };
            for &next in list {
                if owner.contains_key(&next) {
                    continue;
                }
                // Overlap elimination: keep `next` only if its nearest start
                // location is the one whose expansion reached it.
                let mid = segment_midpoint(network, next);
                let rs = nearest_start(start_points, &mid);
                if rs == owner_r {
                    owner.insert(next, owner_r);
                    bounding.push(next);
                }
            }
        }
    }
    bounding.sort_unstable();
    (bounding, owner)
}

/// Runs MQMB: computes the unified maximum/minimum bounding regions with
/// per-segment owners.
pub fn mqmb(
    con_index: &ConIndex,
    network: &RoadNetwork,
    starts: &[SegmentId],
    start_points: &[GeoPoint],
    start_time_s: u32,
    duration_s: u32,
) -> MqmbBounds {
    assert!(!starts.is_empty(), "m-query needs at least one start segment");
    assert_eq!(starts.len(), start_points.len());
    let (max_region, owner) = expand(con_index, network, starts, start_points, start_time_s, duration_s, true);
    let (min_region, _) = expand(con_index, network, starts, start_points, start_time_s, duration_s, false);
    // The minimum bounding region is contained in the maximum one by
    // construction of the speed bounds; intersect defensively so the annulus
    // arithmetic stays valid even for degenerate speed statistics.
    let max_set: std::collections::HashSet<SegmentId> = max_region.iter().copied().collect();
    let min_region: Vec<SegmentId> = min_region.into_iter().filter(|s| max_set.contains(s)).collect();
    MqmbBounds { max_region, min_region, owner }
}

/// Outcome of the multi-location trace back search.
pub struct MqmbTbsOutcome {
    /// The Prob-reachable region of the m-query.
    pub region: ReachableRegion,
    /// Total probability verifications performed.
    pub verifications: usize,
    /// Number of annulus segments examined.
    pub visited: usize,
}

/// Verifies the unified annulus: every segment is checked once, against the
/// verifier of the start location that owns it.
pub fn mqmb_trace_back(
    network: &RoadNetwork,
    st_index: &StIndex,
    bounds: &MqmbBounds,
    starts: &[SegmentId],
    start_time_s: u32,
    duration_s: u32,
    prob: f64,
) -> MqmbTbsOutcome {
    let mut verifiers: Vec<ReachabilityVerifier<'_>> = starts
        .iter()
        .map(|&s| ReachabilityVerifier::new(st_index, s, start_time_s, duration_s))
        .collect();

    let annulus = bounds.annulus();
    let mut result: Vec<SegmentId> = bounds.min_region.clone();
    result.extend_from_slice(starts);
    let mut verifications = 0usize;
    for &seg in &annulus {
        let owner = bounds.owner.get(&seg).copied().unwrap_or(0);
        if verifiers[owner].is_reachable(seg, prob) {
            result.push(seg);
        }
        verifications += 1;
    }
    MqmbTbsOutcome {
        region: ReachableRegion::from_segments(network, result),
        verifications,
        visited: annulus.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::query::sqmb::sqmb;
    use crate::speed_stats::SpeedStats;
    use std::sync::Arc;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::{FleetConfig, TrajectoryDataset};

    struct Fixture {
        network: Arc<RoadNetwork>,
        con: ConIndex,
        st: StIndex,
        starts: Vec<SegmentId>,
        start_points: Vec<GeoPoint>,
    }

    fn setup() -> Fixture {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let center = city.central_point();
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig { num_taxis: 30, num_days: 5, ..FleetConfig::tiny() },
        );
        let config = IndexConfig { read_latency_us: 0, ..Default::default() };
        let st = StIndex::build(network.clone(), &dataset, &config);
        let stats = Arc::new(SpeedStats::from_dataset(&network, &dataset, config.slot_s));
        let con = ConIndex::new(network.clone(), stats, &config);
        let start_points = vec![
            center,
            center.offset_m(1500.0, 0.0),
            center.offset_m(0.0, -1500.0),
        ];
        let starts: Vec<SegmentId> = start_points
            .iter()
            .map(|p| network.nearest_segment(p).unwrap().0)
            .collect();
        Fixture { network, con, st, starts, start_points }
    }

    #[test]
    fn owners_are_assigned_and_regions_sorted() {
        let f = setup();
        let b = mqmb(&f.con, &f.network, &f.starts, &f.start_points, 9 * 3600, 600);
        assert!(b.max_region.windows(2).all(|w| w[0] < w[1]));
        assert!(b.min_region.windows(2).all(|w| w[0] < w[1]));
        for seg in &b.max_region {
            assert!(b.owner.contains_key(seg), "segment {seg} has no owner");
            assert!(b.owner[seg] < f.starts.len());
        }
        // Every start segment is in the region and owns itself.
        for (i, s) in f.starts.iter().enumerate() {
            assert!(b.max_region.binary_search(s).is_ok());
            assert_eq!(b.owner[s], i);
        }
    }

    #[test]
    fn unified_region_is_subset_of_union_of_individual_regions() {
        let f = setup();
        let b = mqmb(&f.con, &f.network, &f.starts, &f.start_points, 9 * 3600, 600);
        let mut union: std::collections::HashSet<SegmentId> = std::collections::HashSet::new();
        for &s in &f.starts {
            let single = sqmb(&f.con, f.network.num_segments(), s, 9 * 3600, 600);
            union.extend(single.max_region);
        }
        for seg in &b.max_region {
            assert!(union.contains(seg), "{seg} not in any individual bounding region");
        }
        // The unified region is meaningfully smaller than n times one region
        // when the locations overlap (1.5 km apart, 10-minute budget).
        assert!(b.max_region.len() <= union.len());
    }

    #[test]
    fn single_location_mqmb_equals_sqmb() {
        let f = setup();
        let b = mqmb(
            &f.con,
            &f.network,
            &f.starts[..1],
            &f.start_points[..1],
            9 * 3600,
            600,
        );
        let s = sqmb(&f.con, f.network.num_segments(), f.starts[0], 9 * 3600, 600);
        assert_eq!(b.max_region, s.max_region);
        assert_eq!(b.min_region, s.min_region);
    }

    #[test]
    fn trace_back_verifies_each_annulus_segment_once() {
        let f = setup();
        let b = mqmb(&f.con, &f.network, &f.starts, &f.start_points, 9 * 3600, 600);
        let outcome = mqmb_trace_back(&f.network, &f.st, &b, &f.starts, 9 * 3600, 600, 0.2);
        assert_eq!(outcome.verifications, b.annulus().len());
        assert_eq!(outcome.visited, b.annulus().len());
        // All start segments are in the result.
        for s in &f.starts {
            assert!(outcome.region.contains(*s));
        }
        // The region stays within the maximum bounding region.
        let max_set: std::collections::HashSet<SegmentId> = b.max_region.iter().copied().collect();
        for seg in &outcome.region.segments {
            assert!(max_set.contains(seg) || f.starts.contains(seg));
        }
    }

    #[test]
    fn mqmb_result_close_to_union_of_squeries() {
        // The m-query region should roughly equal the union of the
        // single-location regions (Fig. 4.9): allow boundary differences
        // from the overlap-elimination heuristic.
        let f = setup();
        let b = mqmb(&f.con, &f.network, &f.starts, &f.start_points, 9 * 3600, 900);
        let m_outcome = mqmb_trace_back(&f.network, &f.st, &b, &f.starts, 9 * 3600, 900, 0.2);

        let mut union_segments: Vec<SegmentId> = Vec::new();
        for &s in &f.starts {
            let sb = sqmb(&f.con, f.network.num_segments(), s, 9 * 3600, 900);
            let mut verifier = ReachabilityVerifier::new(&f.st, s, 9 * 3600, 900);
            let single = crate::query::tbs::trace_back_search(&f.network, &mut verifier, &sb, 0.2);
            union_segments.extend(single.region.segments);
        }
        let union = ReachableRegion::from_segments(&f.network, union_segments);
        // The two agree on at least 60% of the union (Jaccard-style bound —
        // the heuristics differ only near ownership boundaries).
        let m_set: std::collections::HashSet<_> = m_outcome.region.segments.iter().collect();
        let common = union.segments.iter().filter(|s| m_set.contains(s)).count();
        assert!(
            common as f64 >= 0.6 * union.len() as f64,
            "m-query region diverges from the union: {} common of {}",
            common,
            union.len()
        );
    }
}
