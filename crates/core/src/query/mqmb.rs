//! M-query maximum/minimum bounding region search (MQMB, Algorithm 3) and
//! the multi-location trace back search built on top of it.
//!
//! An m-query with `n` start locations could be answered by `n` independent
//! s-queries, but road segments in the overlap of several bounding regions
//! would then be verified (and their postings read) up to `n` times. MQMB
//! grows a *unified* bounding region instead: in every Con-Index hop, a newly
//! reached segment is kept only if the start location whose expansion reached
//! it is also the nearest start location (`rs = argmin dis(r0, b)`), so every
//! segment is owned by exactly one start location and verified exactly once.
//!
//! `dis(r0, b)` is the *network* distance: one bounded Dijkstra per start
//! location (on the thread's reusable dense
//! [`DijkstraWorkspace`](streach_roadnet::DijkstraWorkspace)) precomputes all
//! distances, instead of one shortest-path computation per (start, segment)
//! pair. Start locations whose road network cannot reach a segment within
//! the travel cap fall back to the euclidean distance between the query
//! point and the segment's memoized midpoint. The owner table itself is a
//! dense `Vec<u32>` keyed by segment index — no hashing on the hot path.

use std::time::Instant;

use streach_geo::GeoPoint;
use streach_roadnet::{RoadClass, RoadNetwork, SegmentId};
use streach_storage::StorageResult;

use crate::con_index::ConIndex;
use crate::query::sqmb::num_hops;
use crate::query::verifier::{PostingSource, VerifierCore, VerifierScratch};
use crate::region::ReachableRegion;
use crate::time::slot_of;

/// Sentinel for "segment not in the region / unowned".
const NO_OWNER: u32 = u32::MAX;

/// Unified bounding regions of an m-query.
#[derive(Debug, Clone)]
pub struct MqmbBounds {
    /// Unified maximum bounding region (sorted).
    pub max_region: Vec<SegmentId>,
    /// Unified minimum bounding region (sorted).
    pub min_region: Vec<SegmentId>,
    /// Owning start-location index per segment (dense, keyed by segment
    /// index; `u32::MAX` = not in the maximum bounding region).
    owner: Vec<u32>,
}

impl MqmbBounds {
    /// The start location owning `seg`, if the segment belongs to the
    /// maximum bounding region.
    pub fn owner_of(&self, seg: SegmentId) -> Option<usize> {
        match self.owner.get(seg.index()).copied().unwrap_or(NO_OWNER) {
            NO_OWNER => None,
            i => Some(i as usize),
        }
    }

    /// Segments of the maximum bounding region outside the minimum one.
    pub fn annulus(&self) -> Vec<SegmentId> {
        let mut out = Vec::with_capacity(self.max_region.len());
        let mut i = 0;
        for &seg in &self.max_region {
            while i < self.min_region.len() && self.min_region[i] < seg {
                i += 1;
            }
            if i >= self.min_region.len() || self.min_region[i] != seg {
                out.push(seg);
            }
        }
        out
    }
}

/// Per-start network distances used for the `rs = argmin dis(r0, b)`
/// ownership decisions, with a euclidean fallback for unreachable segments.
struct OwnershipDistances<'a> {
    network: &'a RoadNetwork,
    start_points: &'a [GeoPoint],
    /// Network-nearest start per segment (`NO_OWNER` = unreached by every
    /// start within the travel cap). Built from one Dijkstra per start on
    /// the calling thread's reused workspace, folded into this single dense
    /// table so n starts cost one O(num_segments) array rather than n
    /// workspaces.
    network_nearest: Vec<u32>,
}

impl<'a> OwnershipDistances<'a> {
    fn new(
        network: &'a RoadNetwork,
        starts: &[SegmentId],
        start_points: &'a [GeoPoint],
        duration_s: u32,
    ) -> Self {
        // The same travel cap the ES baseline uses: nothing relevant to the
        // bounding region lies farther than free-flow highway travel over the
        // query duration (10% slack).
        let cap_m = duration_s as f64 * RoadClass::Highway.free_flow_ms() * 1.1;
        let n = network.num_segments();
        let mut best_dist = vec![f64::INFINITY; n];
        let mut network_nearest = vec![NO_OWNER; n];
        streach_roadnet::with_thread_workspace(|ws| {
            for (i, &s) in starts.iter().enumerate() {
                ws.run(network, s, cap_m);
                for (seg, d) in ws.settled() {
                    let idx = seg.index();
                    // Strict < keeps the lowest start index on exact ties,
                    // so ownership is deterministic.
                    if d < best_dist[idx] {
                        best_dist[idx] = d;
                        network_nearest[idx] = i as u32;
                    }
                }
            }
        });
        Self {
            network,
            start_points,
            network_nearest,
        }
    }

    /// Index of the start location nearest to `seg` by network distance,
    /// falling back to euclidean midpoint distance when no start reaches the
    /// segment within the cap. Ties resolve to the lowest index, so the
    /// result is deterministic.
    fn nearest_start(&self, seg: SegmentId) -> usize {
        match self.network_nearest[seg.index()] {
            NO_OWNER => {
                let mid = self.network.segment_midpoint(seg);
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for (i, p) in self.start_points.iter().enumerate() {
                    let d = p.fast_distance_m(&mid);
                    if d < best_d {
                        best = i;
                        best_d = d;
                    }
                }
                best
            }
            i => i as usize,
        }
    }
}

fn expand(
    con_index: &ConIndex,
    distances: &OwnershipDistances<'_>,
    num_segments: usize,
    starts: &[SegmentId],
    start_time_s: u32,
    duration_s: u32,
    use_far: bool,
) -> (Vec<SegmentId>, Vec<u32>) {
    let slot_s = con_index.slot_s();
    let k = num_hops(duration_s, slot_s);
    let mut owner: Vec<u32> = vec![NO_OWNER; num_segments];
    let mut bounding: Vec<SegmentId> = Vec::new();
    for (i, &s) in starts.iter().enumerate() {
        if owner[s.index()] == NO_OWNER {
            owner[s.index()] = i as u32;
            bounding.push(s);
        }
    }

    for step in 0..k {
        let slot = slot_of(start_time_s.saturating_add(step * slot_s), slot_s);
        let table = con_index.slot_table(slot);
        let snapshot_len = bounding.len();
        for idx in 0..snapshot_len {
            let r = bounding[idx];
            let owner_r = owner[r.index()];
            let list = if use_far { table.far(r) } else { table.near(r) };
            for &next in list {
                if owner[next.index()] != NO_OWNER {
                    continue;
                }
                // Overlap elimination: keep `next` only if its nearest start
                // location is the one whose expansion reached it.
                if distances.nearest_start(next) as u32 == owner_r {
                    owner[next.index()] = owner_r;
                    bounding.push(next);
                }
            }
        }
    }
    bounding.sort_unstable();
    (bounding, owner)
}

/// Runs MQMB: computes the unified maximum/minimum bounding regions with
/// per-segment owners.
pub fn mqmb(
    con_index: &ConIndex,
    network: &RoadNetwork,
    starts: &[SegmentId],
    start_points: &[GeoPoint],
    start_time_s: u32,
    duration_s: u32,
) -> MqmbBounds {
    assert!(
        !starts.is_empty(),
        "m-query needs at least one start segment"
    );
    assert_eq!(starts.len(), start_points.len());
    let distances = OwnershipDistances::new(network, starts, start_points, duration_s);
    let n = network.num_segments();
    let (max_region, owner) = expand(
        con_index,
        &distances,
        n,
        starts,
        start_time_s,
        duration_s,
        true,
    );
    let (min_region, _) = expand(
        con_index,
        &distances,
        n,
        starts,
        start_time_s,
        duration_s,
        false,
    );
    // The minimum bounding region is contained in the maximum one by
    // construction of the speed bounds; intersect defensively so the annulus
    // arithmetic stays valid even for degenerate speed statistics. The max
    // region's owner table doubles as its membership test.
    let min_region: Vec<SegmentId> = min_region
        .into_iter()
        .filter(|s| owner[s.index()] != NO_OWNER)
        .collect();
    MqmbBounds {
        max_region,
        min_region,
        owner,
    }
}

/// Outcome of the multi-location trace back search.
pub struct MqmbTbsOutcome {
    /// The Prob-reachable region of the m-query.
    pub region: ReachableRegion,
    /// Total probability verifications performed.
    pub verifications: usize,
    /// Number of annulus segments examined.
    pub visited: usize,
    /// Time spent constructing the per-start verifier cores.
    pub setup_time: std::time::Duration,
    /// Time spent verifying the unified annulus.
    pub verify_time: std::time::Duration,
}

/// Verifies the unified annulus: every segment is checked once, against the
/// verifier of the start location that owns it.
///
/// The verifications run in parallel; the per-start [`VerifierCore`]s are
/// shared read-only across workers and each worker reuses one scratch for
/// all segments of its chunk, whichever start they belong to. Fallible end
/// to end: core construction reads the start segments' postings and every
/// annulus verification reads the candidate's — a storage fault anywhere
/// cancels the remaining work and surfaces as `Err`.
pub fn mqmb_trace_back<I: PostingSource + ?Sized>(
    network: &RoadNetwork,
    st_index: &I,
    bounds: &MqmbBounds,
    starts: &[SegmentId],
    start_time_s: u32,
    duration_s: u32,
    prob: f64,
) -> StorageResult<MqmbTbsOutcome> {
    let t0 = Instant::now();
    let cores: Vec<VerifierCore<'_, I>> = starts
        .iter()
        .map(|&s| VerifierCore::new(st_index, s, start_time_s, duration_s))
        .collect::<StorageResult<_>>()?;
    let setup_time = t0.elapsed();

    let t1 = Instant::now();
    let annulus = bounds.annulus();
    let passed = streach_par::try_par_map_with(&annulus, VerifierScratch::new, |scratch, seg| {
        let owner = bounds.owner_of(*seg).unwrap_or(0);
        cores[owner].is_reachable(scratch, *seg, prob)
    })?;
    let verify_time = t1.elapsed();

    let mut result: Vec<SegmentId> = bounds.min_region.clone();
    result.extend_from_slice(starts);
    result.extend(
        annulus
            .iter()
            .zip(&passed)
            .filter(|(_, ok)| **ok)
            .map(|(seg, _)| *seg),
    );
    Ok(MqmbTbsOutcome {
        region: ReachableRegion::from_segments(network, result),
        verifications: annulus.len(),
        visited: annulus.len(),
        setup_time,
        verify_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::query::sqmb::sqmb;
    use crate::speed_stats::SpeedStats;
    use crate::st_index::StIndex;
    use std::sync::Arc;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::{FleetConfig, TrajectoryDataset};

    struct Fixture {
        network: Arc<RoadNetwork>,
        con: ConIndex,
        st: StIndex,
        starts: Vec<SegmentId>,
        start_points: Vec<GeoPoint>,
    }

    fn setup() -> Fixture {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let center = city.central_point();
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig {
                num_taxis: 30,
                num_days: 5,
                ..FleetConfig::tiny()
            },
        );
        let config = IndexConfig {
            read_latency_us: 0,
            ..Default::default()
        };
        let st = StIndex::build(network.clone(), &dataset, &config);
        let stats = Arc::new(SpeedStats::from_dataset(&network, &dataset, config.slot_s));
        let con = ConIndex::new(network.clone(), stats, &config);
        let start_points = vec![
            center,
            center.offset_m(1500.0, 0.0),
            center.offset_m(0.0, -1500.0),
        ];
        let starts: Vec<SegmentId> = start_points
            .iter()
            .map(|p| network.nearest_segment(p).unwrap().0)
            .collect();
        Fixture {
            network,
            con,
            st,
            starts,
            start_points,
        }
    }

    #[test]
    fn owners_are_assigned_and_regions_sorted() {
        let f = setup();
        let b = mqmb(
            &f.con,
            &f.network,
            &f.starts,
            &f.start_points,
            9 * 3600,
            600,
        );
        assert!(b.max_region.windows(2).all(|w| w[0] < w[1]));
        assert!(b.min_region.windows(2).all(|w| w[0] < w[1]));
        for seg in &b.max_region {
            let owner = b.owner_of(*seg);
            assert!(owner.is_some(), "segment {seg} has no owner");
            assert!(owner.unwrap() < f.starts.len());
        }
        // Segments outside the region have no owner.
        let member: std::collections::HashSet<_> = b.max_region.iter().copied().collect();
        for seg in f.network.segment_ids() {
            if !member.contains(&seg) {
                assert_eq!(b.owner_of(seg), None);
            }
        }
        // Every start segment is in the region and owns itself.
        for (i, s) in f.starts.iter().enumerate() {
            assert!(b.max_region.binary_search(s).is_ok());
            assert_eq!(b.owner_of(*s), Some(i));
        }
    }

    /// Ownership follows the paper's rule `rs = argmin dis(r0, b)`,
    /// re-derived here *independently* with the free-function Dijkstra (not
    /// the workspace path mqmb uses), so the assignment cannot drift without
    /// this test noticing.
    #[test]
    fn owners_are_the_network_nearest_start() {
        let f = setup();
        let duration_s = 600u32;
        let b = mqmb(
            &f.con,
            &f.network,
            &f.starts,
            &f.start_points,
            9 * 3600,
            duration_s,
        );
        let cap_m = duration_s as f64 * streach_roadnet::RoadClass::Highway.free_flow_ms() * 1.1;
        let dist_maps: Vec<std::collections::HashMap<SegmentId, f64>> = f
            .starts
            .iter()
            .map(|&s| streach_roadnet::segment_distances_from(&f.network, s, cap_m))
            .collect();
        for &seg in &b.max_region {
            let expected = {
                let mut best = None;
                let mut best_d = f64::INFINITY;
                for (i, map) in dist_maps.iter().enumerate() {
                    if let Some(&d) = map.get(&seg) {
                        if d < best_d {
                            best = Some(i);
                            best_d = d;
                        }
                    }
                }
                match best {
                    Some(i) => i,
                    None => {
                        // Euclidean fallback for segments no start reaches.
                        let mid = f.network.segment_midpoint(seg);
                        (0..f.start_points.len())
                            .min_by(|&a, &bi| {
                                f.start_points[a]
                                    .fast_distance_m(&mid)
                                    .total_cmp(&f.start_points[bi].fast_distance_m(&mid))
                            })
                            .unwrap()
                    }
                }
            };
            assert_eq!(
                b.owner_of(seg),
                Some(expected),
                "segment {seg} owned by the wrong start"
            );
        }
    }

    #[test]
    fn unified_region_is_subset_of_union_of_individual_regions() {
        let f = setup();
        let b = mqmb(
            &f.con,
            &f.network,
            &f.starts,
            &f.start_points,
            9 * 3600,
            600,
        );
        let mut union: std::collections::HashSet<SegmentId> = std::collections::HashSet::new();
        for &s in &f.starts {
            let single = sqmb(&f.con, f.network.num_segments(), s, 9 * 3600, 600);
            union.extend(single.max_region);
        }
        for seg in &b.max_region {
            assert!(
                union.contains(seg),
                "{seg} not in any individual bounding region"
            );
        }
        // The unified region is meaningfully smaller than n times one region
        // when the locations overlap (1.5 km apart, 10-minute budget).
        assert!(b.max_region.len() <= union.len());
    }

    #[test]
    fn single_location_mqmb_equals_sqmb() {
        let f = setup();
        let b = mqmb(
            &f.con,
            &f.network,
            &f.starts[..1],
            &f.start_points[..1],
            9 * 3600,
            600,
        );
        let s = sqmb(&f.con, f.network.num_segments(), f.starts[0], 9 * 3600, 600);
        assert_eq!(b.max_region, s.max_region);
        assert_eq!(b.min_region, s.min_region);
    }

    #[test]
    fn trace_back_verifies_each_annulus_segment_once() {
        let f = setup();
        let b = mqmb(
            &f.con,
            &f.network,
            &f.starts,
            &f.start_points,
            9 * 3600,
            600,
        );
        let outcome =
            mqmb_trace_back(&f.network, &f.st, &b, &f.starts, 9 * 3600, 600, 0.2).unwrap();
        assert_eq!(outcome.verifications, b.annulus().len());
        assert_eq!(outcome.visited, b.annulus().len());
        // All start segments are in the result.
        for s in &f.starts {
            assert!(outcome.region.contains(*s));
        }
        // The region stays within the maximum bounding region.
        let max_set: std::collections::HashSet<SegmentId> = b.max_region.iter().copied().collect();
        for seg in &outcome.region.segments {
            assert!(max_set.contains(seg) || f.starts.contains(seg));
        }
    }

    #[test]
    fn mqmb_result_close_to_union_of_squeries() {
        // The m-query region should roughly equal the union of the
        // single-location regions (Fig. 4.9): allow boundary differences
        // from the overlap-elimination heuristic.
        let f = setup();
        let b = mqmb(
            &f.con,
            &f.network,
            &f.starts,
            &f.start_points,
            9 * 3600,
            900,
        );
        let m_outcome =
            mqmb_trace_back(&f.network, &f.st, &b, &f.starts, 9 * 3600, 900, 0.2).unwrap();

        let mut union_segments: Vec<SegmentId> = Vec::new();
        for &s in &f.starts {
            let sb = sqmb(&f.con, f.network.num_segments(), s, 9 * 3600, 900);
            let core = VerifierCore::new(&f.st, s, 9 * 3600, 900).unwrap();
            let single = crate::query::tbs::trace_back_search(&f.network, &core, &sb, 0.2).unwrap();
            union_segments.extend(single.region.segments);
        }
        let union = ReachableRegion::from_segments(&f.network, union_segments);
        // The two agree on at least 60% of the union (Jaccard-style bound —
        // the heuristics differ only near ownership boundaries).
        let m_set: std::collections::HashSet<_> = m_outcome.region.segments.iter().collect();
        let common = union.segments.iter().filter(|s| m_set.contains(s)).count();
        assert!(
            common as f64 >= 0.6 * union.len() as f64,
            "m-query region diverges from the union: {} common of {}",
            common,
            union.len()
        );
    }
}
