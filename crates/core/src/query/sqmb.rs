//! S-query maximum/minimum bounding region search (SQMB, Algorithm 1).
//!
//! Starting from the start road segment `r0`, the algorithm repeatedly jumps
//! through the Con-Index: in step `ℓ` it unions the Far (resp. Near) ID lists
//! of every segment currently in the bounding set, using the connection
//! table of the slot containing `T + ℓ·Δt`, until `k` steps cover the query
//! duration (`kΔt ≤ L < (k+1)Δt`). The Far expansion yields the **maximum
//! bounding region** (an upper bound of the Prob-reachable region), the Near
//! expansion the **minimum bounding region** (a lower bound).

use streach_roadnet::SegmentId;

use crate::con_index::ConIndex;
use crate::time::slot_of;

/// The two bounding regions computed by SQMB.
#[derive(Debug, Clone)]
pub struct BoundingRegions {
    /// Maximum bounding region (includes the start segment).
    pub max_region: Vec<SegmentId>,
    /// Minimum bounding region (includes the start segment).
    pub min_region: Vec<SegmentId>,
}

impl BoundingRegions {
    /// Segments in the maximum but not the minimum bounding region — the
    /// annulus the trace back search has to verify.
    pub fn annulus(&self) -> Vec<SegmentId> {
        let mut out = Vec::with_capacity(self.max_region.len());
        let mut i = 0;
        for &seg in &self.max_region {
            while i < self.min_region.len() && self.min_region[i] < seg {
                i += 1;
            }
            if i >= self.min_region.len() || self.min_region[i] != seg {
                out.push(seg);
            }
        }
        out
    }
}

/// Number of Con-Index hops needed to cover a duration.
///
/// The paper iterates `k` steps with `kΔt ≤ L < (k+1)Δt`; because the
/// bounding region must stay an *upper* bound of everything reachable within
/// `L`, we round up instead of down when `L` is not a multiple of `Δt` (the
/// extra slack is removed later by the trace back verification), and always
/// take at least one hop.
pub fn num_hops(duration_s: u32, slot_s: u32) -> u32 {
    duration_s.div_ceil(slot_s).max(1)
}

/// One bounded expansion through the Con-Index using either the Far or the
/// Near lists.
fn expand(
    con_index: &ConIndex,
    start_segment: SegmentId,
    start_time_s: u32,
    duration_s: u32,
    num_segments: usize,
    use_far: bool,
) -> Vec<SegmentId> {
    let slot_s = con_index.slot_s();
    let k = num_hops(duration_s, slot_s);

    let mut member = vec![false; num_segments];
    let mut bounding: Vec<SegmentId> = Vec::new();
    member[start_segment.index()] = true;
    bounding.push(start_segment);

    // R starts as {r0}; after each step R = B (Algorithm 1, line 8).
    for step in 0..k {
        let slot = slot_of(start_time_s.saturating_add(step * slot_s), slot_s);
        let table = con_index.slot_table(slot);
        let snapshot_len = bounding.len();
        for idx in 0..snapshot_len {
            let r = bounding[idx];
            let list = if use_far { table.far(r) } else { table.near(r) };
            for &next in list {
                if !member[next.index()] {
                    member[next.index()] = true;
                    bounding.push(next);
                }
            }
        }
    }
    bounding.sort_unstable();
    bounding
}

/// Runs SQMB: computes the maximum and minimum bounding regions of an
/// s-query starting at `start_segment`.
pub fn sqmb(
    con_index: &ConIndex,
    num_segments: usize,
    start_segment: SegmentId,
    start_time_s: u32,
    duration_s: u32,
) -> BoundingRegions {
    let max_region = expand(
        con_index,
        start_segment,
        start_time_s,
        duration_s,
        num_segments,
        true,
    );
    let min_region = expand(
        con_index,
        start_segment,
        start_time_s,
        duration_s,
        num_segments,
        false,
    );
    BoundingRegions {
        max_region,
        min_region,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IndexConfig;
    use crate::speed_stats::SpeedStats;
    use std::sync::Arc;
    use streach_roadnet::{GeneratorConfig, RoadNetwork, SyntheticCity};
    use streach_traj::{FleetConfig, TrajectoryDataset};

    fn setup() -> (Arc<RoadNetwork>, ConIndex, SegmentId) {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let center = city.central_point();
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(
            &network,
            FleetConfig {
                num_taxis: 20,
                num_days: 4,
                ..FleetConfig::tiny()
            },
        );
        let config = IndexConfig::default();
        let stats = Arc::new(SpeedStats::from_dataset(&network, &dataset, config.slot_s));
        let con = ConIndex::new(network.clone(), stats, &config);
        let start = network.nearest_segment(&center).unwrap().0;
        (network, con, start)
    }

    #[test]
    fn num_hops_covers_the_duration() {
        assert_eq!(num_hops(600, 300), 2); // L = 10 min, Δt = 5 min
        assert_eq!(num_hops(300, 300), 1);
        assert_eq!(num_hops(299, 300), 1); // L < Δt still takes one hop
        assert_eq!(num_hops(2100, 300), 7); // L = 35 min
        assert_eq!(num_hops(2100, 600), 4); // Δt = 10 min: rounded up so k·Δt ≥ L
                                            // The covered time never falls short of L.
        for (l, dt) in [(600u32, 300u32), (900, 600), (2100, 600), (60, 300)] {
            assert!(num_hops(l, dt) * dt >= l);
        }
    }

    #[test]
    fn min_region_is_subset_of_max_region() {
        let (network, con, start) = setup();
        let b = sqmb(&con, network.num_segments(), start, 9 * 3600, 600);
        assert!(b.max_region.contains(&start));
        assert!(b.min_region.contains(&start));
        for seg in &b.min_region {
            assert!(
                b.max_region.binary_search(seg).is_ok(),
                "{seg} in min but not max"
            );
        }
        assert!(b.max_region.len() >= b.min_region.len());
        // The annulus is exactly max \ min.
        let annulus = b.annulus();
        assert_eq!(annulus.len(), b.max_region.len() - b.min_region.len());
        for seg in &annulus {
            assert!(b.min_region.binary_search(seg).is_err());
        }
    }

    #[test]
    fn longer_duration_grows_both_regions() {
        let (network, con, start) = setup();
        let short = sqmb(&con, network.num_segments(), start, 9 * 3600, 300);
        let long = sqmb(&con, network.num_segments(), start, 9 * 3600, 1500);
        assert!(long.max_region.len() > short.max_region.len());
        assert!(long.min_region.len() >= short.min_region.len());
        for seg in &short.max_region {
            assert!(long.max_region.binary_search(seg).is_ok());
        }
    }

    #[test]
    fn max_region_covers_direct_successors() {
        let (network, con, start) = setup();
        let b = sqmb(&con, network.num_segments(), start, 9 * 3600, 600);
        for succ in network.successors(start) {
            assert!(
                b.max_region.binary_search(&succ).is_ok(),
                "successor {succ} missing"
            );
        }
    }

    #[test]
    fn regions_are_sorted_and_unique() {
        let (network, con, start) = setup();
        let b = sqmb(&con, network.num_segments(), start, 10 * 3600, 900);
        assert!(b.max_region.windows(2).all(|w| w[0] < w[1]));
        assert!(b.min_region.windows(2).all(|w| w[0] < w[1]));
    }
}
