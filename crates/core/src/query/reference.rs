//! Naive reference implementations of the query hot path.
//!
//! These mirror the pre-optimization code structure — per-call
//! `HashMap<date, Vec<u32>>` construction with sort+dedup in the verifier,
//! hash-map Dijkstra for the distance cap, strictly sequential verification —
//! and exist for two purposes:
//!
//! 1. **Equivalence regression**: the `equivalence` integration test asserts
//!    that the optimized ES/SQMB+TBS/MQMB pipeline returns bit-identical
//!    regions to these implementations across a grid of queries, so a perf
//!    refactor can never silently change results.
//! 2. **Benchmark baseline**: `crates/bench`'s hotpath harness measures the
//!    speedup of the optimized path against this code on the same scenario
//!    (recorded in `BENCH_hotpath.json`).
//!
//! Keep this module boring. It is deliberately *not* written for speed. Like
//! the optimized pipeline, it propagates storage faults as `Err` — the
//! fault-injection campaign drives both paths through the same scripts.

use std::collections::HashMap;

use streach_roadnet::{segment_distances_from, RoadClass, RoadNetwork, SegmentId};
use streach_storage::StorageResult;

use crate::query::sqmb::BoundingRegions;
use crate::query::SQuery;
use crate::region::ReachableRegion;
use crate::st_index::StIndex;
use crate::time::slots_overlapping;

/// Reads the per-day trajectory IDs of `segment` over `[start_s, end_s)`,
/// allocating a fresh map per call (the pre-optimization verifier layout).
fn ids_by_day(
    st_index: &StIndex,
    segment: SegmentId,
    start_s: u32,
    end_s: u32,
) -> StorageResult<HashMap<u16, Vec<u32>>> {
    let mut map: HashMap<u16, Vec<u32>> = HashMap::new();
    for slot in slots_overlapping(start_s, end_s, st_index.slot_s()) {
        if let Some(list) = st_index.time_list(segment, slot)? {
            for entry in &list.entries {
                map.entry(entry.date)
                    .or_default()
                    .extend_from_slice(&entry.traj_ids);
            }
        }
    }
    for ids in map.values_mut() {
        ids.sort_unstable();
        ids.dedup();
    }
    Ok(map)
}

fn sorted_intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// The pre-optimization verifier: one `HashMap` of freshly sorted ID lists
/// per probability evaluation.
pub struct NaiveVerifier<'a> {
    st_index: &'a StIndex,
    start_ids_by_day: HashMap<u16, Vec<u32>>,
    window: (u32, u32),
    num_days: u16,
}

impl<'a> NaiveVerifier<'a> {
    /// Builds a verifier for one (start segment, T, Δt, L) combination.
    pub fn new(
        st_index: &'a StIndex,
        start_segment: SegmentId,
        start_time_s: u32,
        duration_s: u32,
    ) -> StorageResult<Self> {
        // Same cross-midnight wrap semantics as the optimized verifier: the
        // window is half-open and may extend past midnight, in which case
        // `slots_overlapping` wraps onto the beginning of the day.
        let slot_s = st_index.slot_s();
        let t0_end = start_time_s.saturating_add(slot_s);
        let end = start_time_s.saturating_add(duration_s);
        Ok(Self {
            st_index,
            start_ids_by_day: ids_by_day(st_index, start_segment, start_time_s, t0_end)?,
            window: (start_time_s, end),
            num_days: st_index.num_days(),
        })
    }

    /// The reachable probability `probability(r, r0)` of Eq. 3.1.
    pub fn probability(&self, segment: SegmentId) -> StorageResult<f64> {
        if self.num_days == 0 || self.start_ids_by_day.is_empty() {
            return Ok(0.0);
        }
        let target_ids = ids_by_day(self.st_index, segment, self.window.0, self.window.1)?;
        if target_ids.is_empty() {
            return Ok(0.0);
        }
        let mut matching_days = 0u32;
        for (date, start_ids) in &self.start_ids_by_day {
            if let Some(ids) = target_ids.get(date) {
                if sorted_intersects(start_ids, ids) {
                    matching_days += 1;
                }
            }
        }
        Ok(matching_days as f64 / self.num_days as f64)
    }
}

/// The pre-optimization exhaustive search: hash-map Dijkstra for the travel
/// cap plus one sequential verification per expanded segment.
pub fn naive_exhaustive_search(
    network: &RoadNetwork,
    st_index: &StIndex,
    query: &SQuery,
    start_segment: SegmentId,
) -> StorageResult<ReachableRegion> {
    let verifier = NaiveVerifier::new(
        st_index,
        start_segment,
        query.start_time_s,
        query.duration_s,
    )?;
    let cap_m = query.duration_s as f64 * RoadClass::Highway.free_flow_ms() * 1.1;
    let distances = segment_distances_from(network, start_segment, cap_m);

    let mut reachable: Vec<SegmentId> = vec![start_segment];
    let mut visited: std::collections::HashSet<SegmentId> = std::collections::HashSet::new();
    let mut frontier: std::collections::VecDeque<SegmentId> = std::collections::VecDeque::new();
    frontier.push_back(start_segment);
    visited.insert(start_segment);
    while let Some(seg) = frontier.pop_front() {
        for next in network.successors(seg) {
            if !visited.insert(next) {
                continue;
            }
            if !distances.contains_key(&next) {
                continue;
            }
            if verifier.probability(next)? >= query.prob {
                reachable.push(next);
            }
            frontier.push_back(next);
        }
    }
    Ok(ReachableRegion::from_segments(network, reachable))
}

/// The pre-optimization trace back search: the sequential annulus queue of
/// Algorithm 2, verifying through the [`NaiveVerifier`].
pub fn naive_trace_back_search(
    network: &RoadNetwork,
    st_index: &StIndex,
    bounds: &BoundingRegions,
    start_segment: SegmentId,
    start_time_s: u32,
    duration_s: u32,
    prob: f64,
) -> StorageResult<ReachableRegion> {
    let verifier = NaiveVerifier::new(st_index, start_segment, start_time_s, duration_s)?;
    let min_set: std::collections::HashSet<SegmentId> = bounds.min_region.iter().copied().collect();
    let max_set: std::collections::HashSet<SegmentId> = bounds.max_region.iter().copied().collect();
    let mut queue: std::collections::VecDeque<SegmentId> = bounds.annulus().into();
    let mut visited: std::collections::HashSet<SegmentId> = std::collections::HashSet::new();
    let mut result: Vec<SegmentId> = Vec::new();
    while let Some(r) = queue.pop_front() {
        if !visited.insert(r) {
            continue;
        }
        if verifier.probability(r)? >= prob {
            result.push(r);
        } else {
            for n in network.neighbors(r) {
                if max_set.contains(&n) && !min_set.contains(&n) && !visited.contains(&n) {
                    queue.push_back(n);
                }
            }
        }
    }
    let mut segments = bounds.min_region.clone();
    segments.extend_from_slice(&result);
    Ok(ReachableRegion::from_segments(network, segments))
}
