//! Background maintenance: auto-checkpoint and scheduled compaction for a
//! serving [`ReachabilityEngine`], off the caller's thread.
//!
//! Streaming ingest (see [`crate::ingest`]) leaves two maintenance duties
//! behind: the delta tail must periodically be **checkpointed** into an
//! incremental snapshot (so the WAL stays short and restarts stay fast) and
//! eventually **compacted** into a fresh sealed base (so reads stop paying
//! the delta override path and superseded list versions are reclaimed).
//! Running either synchronously on an ingest or query thread stalls the
//! serving path exactly when the delta tail is largest.
//!
//! [`MaintenanceController::spawn`] starts one background worker
//! (`std::thread`) that watches the engine and triggers:
//!
//! * an **incremental checkpoint** ([`ReachabilityEngine::save_incremental_snapshot`])
//!   whenever the delta heap crosses
//!   [`IndexConfig::auto_checkpoint_bytes`](crate::IndexConfig::auto_checkpoint_bytes),
//! * a **compaction** ([`ReachabilityEngine::compact`]) when the delta/base
//!   size ratio crosses [`MaintenanceConfig::compact_delta_ratio`] or on the
//!   fixed [`MaintenanceConfig::compact_interval`] cadence.
//!
//! Both run concurrently with queries (compaction publishes its new base
//! with one atomic pointer swap; a checkpoint pins one immutable state) and
//! exclude only ingest for their duration. Failures are reported back as
//! typed [`MaintenanceError`]s retrievable from the controller — a
//! maintenance fault (full disk, dead delta store) never kills the worker
//! or the serving process, and the failed pass is retried on the next
//! trigger.
//!
//! Tests drive the worker **deterministically**: [`MaintenanceController::run_now`]
//! kicks a pass and blocks until it completed, which turns "background
//! maintenance at this exact point between two batches" into a scriptable
//! trigger — the shape `tests/concurrent_maintenance.rs` builds its seeded
//! harness around.

use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use streach_storage::StorageError;

use crate::engine::ReachabilityEngine;

/// Which maintenance duty a worker pass ran (or failed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceTask {
    /// An incremental snapshot save of the serving engine.
    Checkpoint,
    /// Folding the delta tail into a new sealed base.
    Compaction,
}

/// A typed maintenance failure, reported back from the background worker.
#[derive(Debug)]
pub struct MaintenanceError {
    /// The duty that failed.
    pub task: MaintenanceTask,
    /// The storage error it failed with.
    pub error: StorageError,
}

impl std::fmt::Display for MaintenanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "background {:?} failed: {}", self.task, self.error)
    }
}

/// Counters of the background worker's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Trigger-evaluation passes completed (kicked or on the poll cadence).
    pub passes: u64,
    /// Incremental checkpoints saved.
    pub checkpoints: u64,
    /// Compactions folded.
    pub compactions: u64,
    /// Failed duties (details retrievable via
    /// [`MaintenanceController::take_errors`]).
    pub errors: u64,
}

/// Trigger configuration of the background worker. The checkpoint trigger
/// itself lives in
/// [`IndexConfig::auto_checkpoint_bytes`](crate::IndexConfig::auto_checkpoint_bytes)
/// (it is a property of the index, persisted in snapshots); this struct
/// configures the worker's cadence and the compaction policy.
#[derive(Debug, Clone)]
pub struct MaintenanceConfig {
    /// How often the worker re-evaluates its triggers when nobody kicks it.
    pub poll_interval: Duration,
    /// Compact when `delta_bytes >= ratio * base_posting_bytes` (`None`
    /// disables the ratio trigger).
    pub compact_delta_ratio: Option<f64>,
    /// Compact on a fixed cadence regardless of size (`None` disables the
    /// cadence trigger). Either trigger fires only when the delta is
    /// non-empty.
    pub compact_interval: Option<Duration>,
}

impl Default for MaintenanceConfig {
    fn default() -> Self {
        Self {
            poll_interval: Duration::from_millis(200),
            compact_delta_ratio: Some(0.5),
            compact_interval: None,
        }
    }
}

struct WorkerState {
    stop: bool,
    /// Pass tickets requested by [`MaintenanceController::kick`] /
    /// [`MaintenanceController::run_now`].
    kicks_requested: u64,
    /// Highest ticket whose pass has completed.
    kicks_served: u64,
    stats: MaintenanceStats,
    errors: Vec<MaintenanceError>,
}

struct Shared {
    engine: Arc<ReachabilityEngine>,
    dir: PathBuf,
    config: MaintenanceConfig,
    state: Mutex<WorkerState>,
    cv: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, WorkerState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Owns the background maintenance worker of one serving engine. Dropping
/// the controller (or calling [`MaintenanceController::shutdown`]) stops
/// the worker cleanly: the in-flight pass finishes, then the thread joins.
pub struct MaintenanceController {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl MaintenanceController {
    /// Spawns the background worker. `dir` is the snapshot directory
    /// auto-checkpoints save into — normally the directory the engine was
    /// opened from, so the WAL rotates on every successful checkpoint.
    pub fn spawn<P: Into<PathBuf>>(
        engine: Arc<ReachabilityEngine>,
        dir: P,
        config: MaintenanceConfig,
    ) -> Self {
        let shared = Arc::new(Shared {
            engine,
            dir: dir.into(),
            config,
            state: Mutex::new(WorkerState {
                stop: false,
                kicks_requested: 0,
                kicks_served: 0,
                stats: MaintenanceStats::default(),
                errors: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        let worker = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("streach-maintenance".into())
                .spawn(move || Self::worker_loop(&shared))
                .expect("spawn maintenance worker")
        };
        Self {
            shared,
            worker: Some(worker),
        }
    }

    fn worker_loop(shared: &Shared) {
        let mut last_compaction = Instant::now();
        // Delta shape at the last *successful* checkpoint: the trigger
        // gates on growth since then, so an idle engine whose delta sits
        // above the threshold is checkpointed once — not re-saved (and its
        // WAL re-rotated) on every poll pass forever.
        let mut last_checkpointed: Option<crate::st_index::DeltaStats> = None;
        loop {
            // Wait for a kick, the poll cadence, or shutdown.
            let serving = {
                let mut state = shared.lock();
                loop {
                    if state.stop {
                        return;
                    }
                    if state.kicks_requested > state.kicks_served {
                        break state.kicks_requested;
                    }
                    let (guard, timeout) = shared
                        .cv
                        .wait_timeout(state, shared.config.poll_interval)
                        .unwrap_or_else(|e| e.into_inner());
                    state = guard;
                    if timeout.timed_out() {
                        break state.kicks_requested;
                    }
                }
            };
            Self::run_pass(shared, &mut last_compaction, &mut last_checkpointed);
            let mut state = shared.lock();
            state.kicks_served = state.kicks_served.max(serving);
            state.stats.passes += 1;
            shared.cv.notify_all();
        }
    }

    /// One trigger-evaluation pass: checkpoint if the delta heap crossed
    /// the auto-checkpoint threshold **and grew since the last successful
    /// checkpoint** (a checkpoint does not shrink the delta — only
    /// compaction does — so the absolute size alone would re-save forever),
    /// then compact if a compaction trigger is due. Errors are recorded,
    /// never propagated — the engine keeps serving and the next pass
    /// retries.
    fn run_pass(
        shared: &Shared,
        last_compaction: &mut Instant,
        last_checkpointed: &mut Option<crate::st_index::DeltaStats>,
    ) {
        let engine = &shared.engine;

        let threshold = engine.config().auto_checkpoint_bytes;
        let delta = engine.st_index().delta_stats();
        if threshold > 0
            && delta.delta_bytes >= threshold
            && last_checkpointed.as_ref() != Some(&delta)
        {
            match engine.save_incremental_snapshot(&shared.dir) {
                Ok(()) => {
                    // Re-read under no lock: the delta may have grown while
                    // the save ran — recording the pre-save shape keeps the
                    // next pass triggering on that growth.
                    *last_checkpointed = Some(delta);
                    shared.lock().stats.checkpoints += 1;
                }
                Err(error) => Self::record_error(shared, MaintenanceTask::Checkpoint, error),
            }
        }

        let delta = engine.st_index().delta_stats();
        if delta.delta_lists > 0 {
            let base_bytes = engine.st_index().stats().posting_bytes.max(1);
            let ratio_due = shared
                .config
                .compact_delta_ratio
                .is_some_and(|ratio| delta.delta_bytes as f64 >= ratio * base_bytes as f64);
            let cadence_due = shared
                .config
                .compact_interval
                .is_some_and(|interval| last_compaction.elapsed() >= interval);
            if ratio_due || cadence_due {
                match engine.compact() {
                    Ok(_) => {
                        *last_compaction = Instant::now();
                        // The delta the checkpoint marker described no
                        // longer exists: without this reset, a future delta
                        // that happens to grow back to byte-identical stats
                        // would never be checkpointed again.
                        *last_checkpointed = None;
                        shared.lock().stats.compactions += 1;
                    }
                    Err(error) => Self::record_error(shared, MaintenanceTask::Compaction, error),
                }
            }
        }
    }

    fn record_error(shared: &Shared, task: MaintenanceTask, error: StorageError) {
        let mut state = shared.lock();
        state.stats.errors += 1;
        state.errors.push(MaintenanceError { task, error });
    }

    /// Wakes the worker for an immediate trigger-evaluation pass without
    /// waiting for it.
    pub fn kick(&self) {
        let mut state = self.shared.lock();
        state.kicks_requested += 1;
        self.shared.cv.notify_all();
    }

    /// Kicks the worker and blocks until that pass has completed — the
    /// deterministic hook: after `run_now` returns, every maintenance
    /// action the engine's current state warranted has happened (or is
    /// recorded as a typed error).
    pub fn run_now(&self) {
        let mut state = self.shared.lock();
        state.kicks_requested += 1;
        let ticket = state.kicks_requested;
        self.shared.cv.notify_all();
        while state.kicks_served < ticket {
            state = self
                .shared
                .cv
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Activity counters so far.
    pub fn stats(&self) -> MaintenanceStats {
        self.shared.lock().stats
    }

    /// Drains the recorded maintenance failures (oldest first).
    pub fn take_errors(&self) -> Vec<MaintenanceError> {
        std::mem::take(&mut self.shared.lock().errors)
    }

    /// The snapshot directory auto-checkpoints save into.
    pub fn snapshot_dir(&self) -> &std::path::Path {
        &self.shared.dir
    }

    fn stop_and_join(&mut self) {
        {
            let mut state = self.shared.lock();
            state.stop = true;
            self.shared.cv.notify_all();
        }
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }

    /// Stops the worker cleanly (the in-flight pass finishes first) and
    /// returns any failures it had recorded.
    pub fn shutdown(mut self) -> Vec<MaintenanceError> {
        self.stop_and_join();
        std::mem::take(&mut self.shared.lock().errors)
    }
}

impl Drop for MaintenanceController {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use crate::config::IndexConfig;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::{points_of, FleetConfig, TrajectoryDataset};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("streach-maintenance-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A serving engine plus the batches of a second fleet-day wave.
    fn serving_engine(
        dir: &PathBuf,
        auto_checkpoint_bytes: u64,
    ) -> (Arc<ReachabilityEngine>, Vec<Vec<streach_traj::TrajPoint>>) {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let full = TrajectoryDataset::simulate(
            &network,
            FleetConfig {
                num_taxis: 8,
                num_days: 3,
                day_start_s: 8 * 3600,
                day_end_s: 11 * 3600,
                seed: 9,
                ..FleetConfig::default()
            },
        );
        let base = TrajectoryDataset::from_matched(
            full.trajectories()
                .iter()
                .filter(|t| t.date < 2)
                .cloned()
                .collect(),
            full.num_taxis(),
            2,
        );
        let batches: Vec<Vec<streach_traj::TrajPoint>> = full
            .trajectories()
            .iter()
            .filter(|t| t.date >= 2)
            .map(|t| points_of(t).collect())
            .collect();
        EngineBuilder::new(network.clone(), &base)
            .index_config(IndexConfig {
                read_latency_us: 0,
                auto_checkpoint_bytes,
                ..Default::default()
            })
            .save_snapshot(dir)
            .expect("save base snapshot");
        let engine =
            Arc::new(ReachabilityEngine::open_snapshot(dir, network).expect("open snapshot"));
        engine.attach_wal(dir.join("ingest.wal")).expect("attach");
        (engine, batches)
    }

    #[test]
    fn auto_checkpoint_fires_when_delta_crosses_threshold() {
        let dir = tmp_dir("auto-ckpt");
        // 1-byte threshold: any ingested delta warrants a checkpoint.
        let (engine, batches) = serving_engine(&dir, 1);
        let controller = MaintenanceController::spawn(
            Arc::clone(&engine),
            &dir,
            MaintenanceConfig {
                compact_delta_ratio: None,
                ..Default::default()
            },
        );
        controller.run_now();
        assert_eq!(controller.stats().checkpoints, 0, "no delta yet");
        engine.ingest(&batches[0]).expect("ingest");
        controller.run_now();
        let stats = controller.stats();
        // The worker's own poll cadence may have run extra passes (the
        // delta stays non-empty without compaction), so at least one.
        assert!(stats.checkpoints >= 1, "threshold crossed => checkpoint");
        assert_eq!(stats.errors, 0);
        // The checkpoint rotated the WAL (everything applied + folded).
        let wal_len = std::fs::metadata(dir.join("ingest.wal")).unwrap().len();
        assert!(wal_len < 64, "rotated WAL must be header-only: {wal_len}");
        assert!(controller.shutdown().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_triggers_on_ratio_and_reports_success() {
        let dir = tmp_dir("auto-compact");
        let (engine, batches) = serving_engine(&dir, 0);
        let controller = MaintenanceController::spawn(
            Arc::clone(&engine),
            &dir,
            MaintenanceConfig {
                // Any non-empty delta crosses a zero ratio.
                compact_delta_ratio: Some(0.0),
                ..Default::default()
            },
        );
        for batch in &batches {
            engine.ingest(batch).expect("ingest");
        }
        assert!(engine.st_index().delta_stats().delta_lists > 0);
        controller.run_now();
        // (>=: the poll cadence may have folded an intermediate delta too.)
        assert!(controller.stats().compactions >= 1);
        assert_eq!(
            engine.st_index().delta_stats().delta_lists,
            0,
            "compaction must have folded the delta"
        );
        assert!(controller.shutdown().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_failure_is_reported_typed_and_worker_survives() {
        let dir = tmp_dir("ckpt-error");
        let (engine, batches) = serving_engine(&dir, 1);
        engine.ingest(&batches[0]).expect("ingest");
        // Point the auto-checkpoint at an unwritable target.
        let bogus = dir.join("not-a-dir");
        std::fs::write(&bogus, b"file, not a directory").unwrap();
        let controller = MaintenanceController::spawn(
            Arc::clone(&engine),
            bogus,
            MaintenanceConfig {
                compact_delta_ratio: None,
                ..Default::default()
            },
        );
        controller.run_now();
        let stats = controller.stats();
        assert!(stats.errors >= 1, "failed checkpoint must be recorded");
        let errors = controller.take_errors();
        assert!(!errors.is_empty());
        assert_eq!(errors[0].task, MaintenanceTask::Checkpoint);
        // The worker survives and keeps serving further passes.
        controller.run_now();
        assert!(controller.stats().passes >= 2);
        drop(controller);
        std::fs::remove_dir_all(&dir).ok();
    }
}
