//! The Spatio-Temporal Index (ST-Index).
//!
//! "ST-Index consists of 3 components: Temporal index, Spatial index and Time
//! List. [...] The upper component is a temporal partition indicating the
//! time line per day with the time interval of 5 minutes. Each time slot
//! corresponds to a spatial partition [...]. Each leaf node of the spatial
//! index has a time list to identify the date of trajectories traversing its
//! road segment." (Section 3.2.1)
//!
//! Concretely:
//!
//! * the **temporal index** is a [`BPlusTree`] keyed by the Δt slot number,
//! * the **spatial index** is the R-tree over the static road network — as
//!   the paper notes, "essentially all the leaf nodes in the temporal index
//!   have the same spatial index structure", so a single shared tree (owned
//!   by the [`RoadNetwork`]) is used and exposed through
//!   [`StIndex::locate_segment`],
//! * the **time lists** are [`TimeList`] posting lists (date → trajectory
//!   IDs) serialized into a page-based [`PostingStore`]; every read is real
//!   page I/O, counted and optionally slowed by the simulated disk.
//!
//! # Streaming ingest: sealed base + delta tail
//!
//! The index is split into a **sealed base** (the temporal directory and
//! posting heap produced by [`StIndex::build`] or reopened from a snapshot
//! — never mutated) and a **delta tail** that absorbs trajectory points
//! ingested after open ([`StIndex::apply_points`]). The delta keeps, per
//! (slot, segment) pair it has touched, a *fully merged* time list (base
//! observations ∪ ingested observations) appended to its own posting heap;
//! a delta entry therefore **overrides** the base entry on the read path,
//! which keeps every reader — [`StIndex::time_list`],
//! [`StIndex::read_time_list_into`], [`StIndex::ids_in_window`] — a single
//! posting read with unchanged circular-day slot semantics. When no point
//! was ever ingested the delta check is one relaxed atomic load, so the
//! sealed-base hot path is untouched. [`StIndex::compact`] folds the delta
//! back into a fresh sealed base (bit-identical to a from-scratch build on
//! the combined data) and empties the tail.
//!
//! # Online maintenance: the atomic state swap
//!
//! The sealed base and the delta tail live together in one immutable
//! `IndexState` behind `RwLock<Arc<IndexState>>`. Every reader **pins** the
//! current state with a single `Arc` clone and performs its directory
//! lookup and posting read against that pinned pair — always a consistent
//! (base, delta) combination. Compaction builds the new sealed base
//! entirely off to the side (reading the pinned old state) and publishes it
//! with **one pointer swap**: readers in flight simply finish on the old
//! base, which the `Arc` keeps alive, and no query ever blocks on
//! compaction. Mutation (ingest application, compaction publishing) is
//! serialized by the engine's ingest lock, which queries never touch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU16, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use streach_geo::GeoPoint;
use streach_roadnet::{RoadNetwork, SegmentId};
use streach_storage::{
    BPlusTree, BlobHandle, InMemoryPageStore, IoStats, PageStore, PostingEncoding, PostingStore,
    SimulatedDiskStore, StorageError, StorageResult, TimeList,
};
use streach_traj::{TrajPoint, TrajectoryDataset};

use crate::config::IndexConfig;
use crate::time::{slot_of, slots_overlapping};

/// Page store backing the ST-Index: any [`PageStore`] backend (in-memory for
/// fresh builds, [`streach_storage::FilePageStore`] for reopened snapshots)
/// behind the simulated-latency disk wrapper.
pub type StIndexStore = SimulatedDiskStore<Box<dyn PageStore>>;

/// Directory of one temporal leaf: for every road segment traversed during
/// the slot, the handle of its time list in the posting store.
#[derive(Debug, Clone, Default)]
struct SlotDirectory {
    /// Sorted by segment ID for binary search.
    entries: Vec<(SegmentId, BlobHandle)>,
}

impl SlotDirectory {
    fn get(&self, segment: SegmentId) -> Option<BlobHandle> {
        self.entries
            .binary_search_by_key(&segment, |(s, _)| *s)
            .ok()
            .map(|i| self.entries[i].1)
    }
}

/// Construction and size statistics of an ST-Index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StIndexStats {
    /// Number of (segment, slot) pairs with a non-empty time list.
    pub num_time_lists: u64,
    /// Number of (segment, slot, date, trajectory) observations indexed.
    pub num_observations: u64,
    /// Bytes of posting data written to the **sealed base** heap.
    pub posting_bytes: u64,
    /// Pages allocated in the **sealed base** posting store.
    pub posting_pages: u64,
}

/// Size statistics of the mutable delta tail (streaming ingest).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeltaStats {
    /// Number of (slot, segment) pairs currently overridden by the delta.
    pub delta_lists: u64,
    /// Bytes appended to the delta posting heap (including superseded
    /// versions of re-ingested lists; compaction reclaims them).
    pub delta_bytes: u64,
    /// Pages allocated in the delta posting heap.
    pub delta_pages: u64,
}

/// Where a (segment, slot) time list currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ListRef {
    /// In the sealed base heap.
    Base(BlobHandle),
    /// In the delta heap — a fully merged list that overrides the base.
    Delta(BlobHandle),
}

/// Number of lock stripes in the delta directory. Striping is by slot, so
/// queries reading one time-of-day never contend with WAL application
/// folding observations into another.
const DELTA_STRIPES: usize = 16;

/// The mutable delta tail: merged override lists keyed by (slot, segment),
/// stored in their own append-only posting heap.
struct DeltaTail {
    postings: PostingStore<StIndexStore>,
    /// (slot, segment) → handle of the current merged list in the delta
    /// heap, striped by `slot % DELTA_STRIPES` so the apply lock is sharded:
    /// disjoint ingest batches (and concurrent readers) touching different
    /// slots take different locks. Each stripe is a `BTreeMap` so snapshot
    /// serialization and compaction stay deterministic after one merge-sort
    /// across stripes.
    stripes: Vec<RwLock<BTreeMap<(u32, u32), BlobHandle>>>,
    /// Total number of directory entries across stripes, readable without
    /// any lock: the hot path's fast "no deltas" check.
    len: AtomicUsize,
}

impl DeltaTail {
    fn stripe_of(slot: u32) -> usize {
        slot as usize % DELTA_STRIPES
    }

    fn lookup(&self, slot: u32, segment: SegmentId) -> Option<BlobHandle> {
        if self.len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        self.stripes[Self::stripe_of(slot)]
            .read()
            .get(&(slot, segment.0))
            .copied()
    }

    /// Inserts (or replaces) one directory entry, maintaining the global
    /// lock-free length counter.
    fn insert(&self, slot: u32, segment: u32, handle: BlobHandle) {
        let mut stripe = self.stripes[Self::stripe_of(slot)].write();
        if stripe.insert((slot, segment), handle).is_none() {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// All directory entries in (slot, segment) order — the deterministic
    /// view snapshots and compaction serialize.
    fn sorted_entries(&self) -> Vec<((u32, u32), BlobHandle)> {
        let mut out = Vec::with_capacity(self.len.load(Ordering::Relaxed));
        for stripe in &self.stripes {
            out.extend(stripe.read().iter().map(|(k, v)| (*k, *v)));
        }
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }
}

/// The sealed base of the index: the temporal directory plus its posting
/// heap. Produced by [`StIndex::build`], a snapshot open or a compaction —
/// and never mutated afterwards; compaction replaces it wholesale.
struct SealedBase {
    temporal: BPlusTree<u64, SlotDirectory>,
    postings: PostingStore<StIndexStore>,
}

/// One consistent (sealed base, delta tail) pair. Readers pin the current
/// state with a single `Arc` clone; compaction publishes a replacement with
/// one pointer swap while in-flight readers finish on the old state.
struct IndexState {
    base: SealedBase,
    delta: DeltaTail,
}

impl IndexState {
    /// Directory lookup of the blob handle for (segment, slot) — the slot
    /// already wrapped into the day. A delta entry holds the fully merged
    /// list and therefore overrides the base entry; with no deltas the
    /// check is one relaxed atomic load.
    fn lookup(&self, segment: SegmentId, slot: u32) -> Option<ListRef> {
        if let Some(handle) = self.delta.lookup(slot, segment) {
            return Some(ListRef::Delta(handle));
        }
        let directory = self.base.temporal.get(&(slot as u64))?;
        directory.get(segment).map(ListRef::Base)
    }

    /// Reads a located list from whichever heap owns it.
    fn read_time_list(&self, list_ref: ListRef) -> StorageResult<TimeList> {
        match list_ref {
            ListRef::Base(handle) => self.base.postings.read_time_list(handle),
            ListRef::Delta(handle) => self.delta.postings.read_time_list(handle),
        }
    }

    /// Reads a located list's raw encoding into `buf` from whichever heap
    /// owns it.
    fn read_into(&self, list_ref: ListRef, buf: &mut Vec<u8>) -> StorageResult<()> {
        match list_ref {
            ListRef::Base(handle) => self.base.postings.read_into(handle, buf),
            ListRef::Delta(handle) => self.delta.postings.read_into(handle, buf),
        }
    }

    /// Size statistics of this state's delta tail.
    fn delta_stats(&self) -> DeltaStats {
        DeltaStats {
            delta_lists: self.delta.len.load(Ordering::Relaxed) as u64,
            delta_bytes: self.delta.postings.size_bytes(),
            delta_pages: self.delta.postings.num_pages(),
        }
    }
}

/// A pinned, immutable view of the index state, handed to the snapshot
/// writer so one consistent (base, delta) pair backs the whole save.
pub(crate) struct PinnedState(Arc<IndexState>);

impl PinnedState {
    /// The sealed-base posting store.
    pub(crate) fn base_postings(&self) -> &PostingStore<StIndexStore> {
        &self.0.base.postings
    }

    /// The delta posting store.
    pub(crate) fn delta_postings(&self) -> &PostingStore<StIndexStore> {
        &self.0.delta.postings
    }

    /// The temporal directory as (slot, entries) pairs in slot order.
    pub(crate) fn directory_entries(&self) -> Vec<(u32, Vec<(SegmentId, BlobHandle)>)> {
        self.0
            .base
            .temporal
            .iter()
            .into_iter()
            .map(|(slot, dir)| (slot as u32, dir.entries.clone()))
            .collect()
    }

    /// The delta directory as ((slot, segment), handle) pairs in key order.
    pub(crate) fn delta_directory_entries(&self) -> Vec<((u32, u32), BlobHandle)> {
        self.0.delta.sorted_entries()
    }
}

/// The ST-Index.
pub struct StIndex {
    network: Arc<RoadNetwork>,
    slot_s: u32,
    /// `m` in Eq. 3.1 — grows as later fleet-days are ingested.
    num_days: AtomicU16,
    /// The swappable (sealed base, delta tail) pair; see the module docs.
    /// Readers hold the lock only for the `Arc` clone, writers (compaction)
    /// only for the pointer swap — neither ever blocks behind real work.
    state: RwLock<Arc<IndexState>>,
    stats: Mutex<StIndexStats>,
}

impl StIndex {
    /// Builds the ST-Index from a map-matched trajectory dataset.
    ///
    /// Observations are extracted from the trajectories in parallel and
    /// grouped by (slot, segment) with a parallel sort rather than hash maps:
    /// the sorted order *is* the clustered on-disk layout (slot by slot,
    /// segment by segment), so grouping and physical placement are a single
    /// linear scan.
    pub fn build(
        network: Arc<RoadNetwork>,
        dataset: &TrajectoryDataset,
        config: &IndexConfig,
    ) -> Self {
        Self::build_filtered(network, dataset, config, None)
    }

    /// [`StIndex::build`] restricted to an ownership filter: only visits on
    /// segments for which `owned` returns `true` are indexed. A shard
    /// engine indexes exactly its owned postings this way — the filtered
    /// heap is byte-identical to what a build over the pre-filtered dataset
    /// would produce — while day count and the statistics layers stay
    /// global ("postings sharded, statistics replicated").
    pub(crate) fn build_filtered(
        network: Arc<RoadNetwork>,
        dataset: &TrajectoryDataset,
        config: &IndexConfig,
        owned: Option<&(dyn Fn(SegmentId) -> bool + Sync)>,
    ) -> Self {
        assert!(config.slot_s > 0, "slot length must be positive");
        // (slot, segment, date, traj_id) tuples, extracted in parallel.
        let slot_s = config.slot_s;
        let per_traj: Vec<Vec<(u32, u32, u16, u32)>> =
            streach_par::par_map(dataset.trajectories(), |traj| {
                traj.visits
                    .iter()
                    .filter(|visit| owned.is_none_or(|f| f(visit.segment)))
                    .map(|visit| {
                        (
                            slot_of(visit.enter_time_s, slot_s),
                            visit.segment.0,
                            traj.date,
                            traj.traj_id,
                        )
                    })
                    .collect()
            });
        let num_observations: u64 = per_traj.iter().map(|v| v.len() as u64).sum();
        let mut obs: Vec<(u32, u32, u16, u32)> = Vec::with_capacity(num_observations as usize);
        for mut v in per_traj {
            obs.append(&mut v);
        }
        streach_par::par_sort_unstable(&mut obs);

        // Persist the time lists slot by slot (and segment by segment within
        // a slot) so that postings of the same temporal leaf are clustered on
        // neighbouring pages. The sorted tuple order delivers exactly that.
        // Base and delta heap share one I/O counter handle, so query
        // accounting covers both read paths.
        let io = IoStats::new_shared();
        let store = SimulatedDiskStore::with_latency(
            Box::new(InMemoryPageStore::with_stats(Arc::clone(&io))) as Box<dyn PageStore>,
            Duration::from_micros(config.read_latency_us),
            Duration::ZERO,
        );
        let postings = PostingStore::with_options(
            store,
            config.pool_pages,
            0,
            config.read_retries,
            config.posting_encoding,
        );
        let delta = Self::empty_delta(
            io,
            Duration::from_micros(config.read_latency_us),
            config.pool_pages,
            config.read_retries,
            config.posting_encoding,
        );

        let mut temporal = BPlusTree::with_order(32);
        let mut num_time_lists = 0u64;
        let mut directory = SlotDirectory::default();
        let mut list = TimeList::new();
        let mut i = 0;
        while i < obs.len() {
            let (slot, segment, _, _) = obs[i];
            // Consume one (slot, segment) group; (date, id) pairs arrive
            // sorted, so TimeList::add appends (duplicates are skipped).
            list.entries.clear();
            while i < obs.len() && obs[i].0 == slot && obs[i].1 == segment {
                list.add(obs[i].2, obs[i].3);
                i += 1;
            }
            let handle = postings
                .append_time_list(&list)
                .expect("in-memory posting store cannot fail");
            directory.entries.push((SegmentId(segment), handle));
            num_time_lists += 1;
            // Close the slot's directory when the group that just ended was
            // the slot's last.
            if i >= obs.len() || obs[i].0 != slot {
                temporal.insert(slot as u64, std::mem::take(&mut directory));
            }
        }

        // Index construction is not part of any timed experiment; reset the
        // I/O counters so queries start from zero.
        postings.clear_cache();
        postings.io_stats().reset();

        let stats = StIndexStats {
            num_time_lists,
            num_observations,
            posting_bytes: postings.size_bytes(),
            posting_pages: postings.num_pages(),
        };
        Self {
            network,
            slot_s: config.slot_s,
            num_days: AtomicU16::new(dataset.num_days()),
            state: RwLock::new(Arc::new(IndexState {
                base: SealedBase { temporal, postings },
                delta,
            })),
            stats: Mutex::new(stats),
        }
    }

    /// Pins the current (base, delta) state: one `Arc` clone under a read
    /// lock held for nanoseconds. The pinned pair stays alive (and
    /// readable) even if a concurrent compaction publishes a new base.
    fn pin(&self) -> Arc<IndexState> {
        Arc::clone(&self.state.read())
    }

    /// Pins the current state for a snapshot save. The caller holds the
    /// engine's ingest lock, so the pinned pair *is* the index for the
    /// whole save — neither ingest nor compaction can move it.
    pub(crate) fn pin_state(&self) -> PinnedState {
        PinnedState(self.pin())
    }

    /// Wraps a slot number into the day (circular-day semantics).
    fn wrap_slot(&self, slot: u32) -> u32 {
        let slots_per_day = streach_traj::SECONDS_PER_DAY.div_ceil(self.slot_s);
        slot % slots_per_day
    }

    /// A fresh, empty delta tail: an in-memory heap behind the same
    /// simulated-latency shim and I/O counters as the base heap.
    fn empty_delta(
        io: Arc<IoStats>,
        read_latency: Duration,
        pool_pages: usize,
        read_retries: u32,
        encoding: PostingEncoding,
    ) -> DeltaTail {
        let store = SimulatedDiskStore::with_latency(
            Box::new(InMemoryPageStore::with_stats(io)) as Box<dyn PageStore>,
            read_latency,
            Duration::ZERO,
        );
        DeltaTail {
            postings: PostingStore::with_options(store, pool_pages, 0, read_retries, encoding),
            stripes: (0..DELTA_STRIPES)
                .map(|_| RwLock::new(BTreeMap::new()))
                .collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Reassembles an ST-Index from snapshot parts: a reopened posting
    /// store plus the decoded temporal directory, and the delta tail
    /// (posting store plus (slot, segment) → handle entries; both empty for
    /// a snapshot that never ingested). Used by [`crate::snapshot`]; the
    /// directory entries of each slot must be sorted by segment ID (they
    /// are persisted that way).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        network: Arc<RoadNetwork>,
        slot_s: u32,
        num_days: u16,
        stats: StIndexStats,
        directory: Vec<(u32, Vec<(SegmentId, BlobHandle)>)>,
        postings: PostingStore<StIndexStore>,
        delta_postings: PostingStore<StIndexStore>,
        delta_directory: Vec<((u32, u32), BlobHandle)>,
    ) -> Self {
        let mut temporal = BPlusTree::with_order(32);
        for (slot, entries) in directory {
            debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
            temporal.insert(slot as u64, SlotDirectory { entries });
        }
        let mut stripes: Vec<BTreeMap<(u32, u32), BlobHandle>> =
            (0..DELTA_STRIPES).map(|_| BTreeMap::new()).collect();
        let mut delta_len = 0usize;
        for ((slot, segment), handle) in delta_directory {
            if stripes[DeltaTail::stripe_of(slot)]
                .insert((slot, segment), handle)
                .is_none()
            {
                delta_len += 1;
            }
        }
        let delta = DeltaTail {
            postings: delta_postings,
            stripes: stripes.into_iter().map(RwLock::new).collect(),
            len: AtomicUsize::new(delta_len),
        };
        Self {
            network,
            slot_s,
            num_days: AtomicU16::new(num_days),
            state: RwLock::new(Arc::new(IndexState {
                base: SealedBase { temporal, postings },
                delta,
            })),
            stats: Mutex::new(stats),
        }
    }

    /// The temporal granularity Δt in seconds.
    pub fn slot_s(&self) -> u32 {
        self.slot_s
    }

    /// Number of days (`m` in Eq. 3.1) the indexed data spans — grows as
    /// later fleet-days are ingested.
    pub fn num_days(&self) -> u16 {
        self.num_days.load(Ordering::Relaxed)
    }

    /// Raises the day count to cover ingested dates ≥ the current span.
    pub(crate) fn raise_num_days(&self, num_days: u16) {
        self.num_days.fetch_max(num_days, Ordering::Relaxed);
    }

    /// The road network the index was built over.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.network
    }

    /// Construction statistics (sealed base heap).
    pub fn stats(&self) -> StIndexStats {
        *self.stats.lock()
    }

    /// Size statistics of the mutable delta tail.
    pub fn delta_stats(&self) -> DeltaStats {
        self.pin().delta_stats()
    }

    /// Shared I/O counters of the posting stores (base and delta).
    pub fn io_stats(&self) -> Arc<IoStats> {
        self.pin().base.postings.io_stats()
    }

    /// The wire encoding of the posting heaps (base and delta always
    /// agree). Zero-copy readers pass this to
    /// [`streach_storage::visit_posting`] when walking bytes fetched via
    /// [`StIndex::read_time_list_into`].
    pub fn posting_encoding(&self) -> PostingEncoding {
        self.pin().base.postings.encoding()
    }

    /// Drops all cached posting pages (for cold-cache measurements) from
    /// both the base and the delta buffer pool.
    pub fn clear_cache(&self) {
        let state = self.pin();
        state.base.postings.clear_cache();
        state.delta.postings.clear_cache();
    }

    /// Maps a query location to its start road segment `r0` using the
    /// spatial index ("with the start location S and time stamp T from q, we
    /// identify the start road segment r0 in the R-tree from ST-Index").
    pub fn locate_segment(&self, location: &GeoPoint) -> Option<SegmentId> {
        self.network.nearest_segment(location).map(|(id, _)| id)
    }

    /// Reads the time list of `segment` in `slot` from the posting store.
    /// Returns `Ok(None)` when no trajectory traversed the segment in that
    /// slot on any day.
    ///
    /// Blob handles are range-validated against the heap at snapshot open,
    /// so on a healthy store a read cannot fail; a *disk fault* on a
    /// file-backed store (file truncated or deleted after open, EIO) or
    /// corrupted posting bytes surface as `Err` — never a panic, so a
    /// serving process degrades instead of aborting.
    pub fn time_list(&self, segment: SegmentId, slot: u32) -> StorageResult<Option<TimeList>> {
        let state = self.pin();
        match state.lookup(segment, self.wrap_slot(slot)) {
            Some(list_ref) => Ok(Some(state.read_time_list(list_ref)?)),
            None => Ok(None),
        }
    }

    /// Reads the raw encoded time list of `segment` in `slot` into a
    /// caller-owned buffer, returning `Ok(false)` when no list exists and
    /// `Err` on a disk fault.
    ///
    /// This is the hot-path counterpart of [`StIndex::time_list`]: the bytes
    /// land in reusable scratch storage and are consumed through
    /// [`streach_storage::visit_posting`] (passing
    /// [`StIndex::posting_encoding`]), so a warm verification performs no
    /// heap allocation. I/O accounting is identical to [`StIndex::time_list`].
    /// The bytes are **not** structurally validated here (that would cost an
    /// extra pass); the consumer must treat a `false` from `visit_posting`
    /// as corruption — [`StIndex::malformed_posting`] builds the matching
    /// error.
    pub fn read_time_list_into(
        &self,
        segment: SegmentId,
        slot: u32,
        buf: &mut Vec<u8>,
    ) -> StorageResult<bool> {
        let state = self.pin();
        match state.lookup(segment, self.wrap_slot(slot)) {
            Some(list_ref) => {
                state.read_into(list_ref, buf)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// The error describing a posting of `segment` in `slot` whose bytes
    /// failed structural validation (`visit_posting` returned `false`):
    /// a torn or zeroed page under a range-valid handle.
    pub fn malformed_posting(&self, segment: SegmentId, slot: u32) -> StorageError {
        StorageError::corrupt(format!(
            "encoded time list of segment {segment} in slot {slot} is malformed \
             (torn page or corrupted posting heap)"
        ))
    }

    /// Trajectory IDs that traversed `segment` on `date` at any time in the
    /// half-open window `[start_s, end_s)` — `Tr(r, T_B, d)` in the paper's
    /// trace back search. The result is sorted and deduplicated. Windows
    /// extending past midnight wrap onto the beginning of the (same) day,
    /// matching the modular slot arithmetic of [`StIndex::time_list`]. The
    /// whole window reads one pinned (base, delta) state, so a concurrent
    /// compaction can never mix layouts mid-window.
    pub fn ids_in_window(
        &self,
        segment: SegmentId,
        start_s: u32,
        end_s: u32,
        date: u16,
    ) -> StorageResult<Vec<u32>> {
        let state = self.pin();
        let mut slots = slots_overlapping(start_s, end_s, self.slot_s);
        let single_slot = slots.size_hint().0 == 1;
        let mut out: Vec<u32> = Vec::new();
        for slot in &mut slots {
            if let Some(list_ref) = state.lookup(segment, self.wrap_slot(slot)) {
                if let Some(ids) = state.read_time_list(list_ref)?.ids_on(date) {
                    out.extend_from_slice(ids);
                }
            }
        }
        if !single_slot {
            // Each per-slot run is already sorted and unique; only a window
            // spanning several slots can interleave or repeat IDs.
            out.sort_unstable();
            out.dedup();
        }
        Ok(out)
    }

    /// Returns `true` if any trajectory traversed `segment` during `slot` on
    /// any day (reads the directories only — no posting I/O).
    pub fn has_entry(&self, segment: SegmentId, slot: u32) -> bool {
        self.pin().lookup(segment, self.wrap_slot(slot)).is_some()
    }

    /// All slots that have at least one time list (base or delta), in
    /// ascending order.
    pub fn populated_slots(&self) -> impl Iterator<Item = u32> + '_ {
        let state = self.pin();
        let mut slots: std::collections::BTreeSet<u32> = state
            .base
            .temporal
            .iter()
            .into_iter()
            .map(|(k, _)| k as u32)
            .collect();
        if state.delta.len.load(Ordering::Relaxed) > 0 {
            for stripe in &state.delta.stripes {
                slots.extend(stripe.read().keys().map(|(slot, _)| *slot));
            }
        }
        slots.into_iter()
    }

    /// Applies a batch of ingested trajectory points to the delta tail.
    ///
    /// Points are grouped by (slot, segment) exactly like
    /// [`StIndex::build`] groups its observation tuples; for every touched
    /// pair the current list (delta if present, else base, else empty) is
    /// merged with the new (date, trajectory) observations and the merged
    /// encoding is appended to the delta heap. Since [`TimeList::add`] is a
    /// sorted-set insert, the merge is idempotent and order-insensitive:
    /// re-applying a batch (WAL replay after a crash) or applying batches
    /// in any interleaving converges to the same lists a from-scratch build
    /// on the combined data produces.
    ///
    /// Returns the touched (slot, segment) pairs — the delta directory
    /// keys the batch overrode — sorted ascending and deduplicated (one
    /// entry per group), with the slot wrapped into the day grid. Result
    /// caches use exactly this list to invalidate answers whose window
    /// read one of the pairs. On `Err` (a read fault on the current list,
    /// or a write fault appending the merged one) a prefix of the groups
    /// may already be applied; because the merge is idempotent, retrying
    /// the same batch completes the remainder without duplicating
    /// anything.
    ///
    /// Callers serialize through the engine's ingest lock, so the pinned
    /// state cannot be swapped (compacted) away mid-application; concurrent
    /// queries keep reading throughout.
    pub(crate) fn apply_points(&self, points: &[TrajPoint]) -> StorageResult<Vec<(u32, u32)>> {
        if points.is_empty() {
            return Ok(Vec::new());
        }
        let state = self.pin();
        let mut obs: Vec<(u32, u32, u16, u32)> = points
            .iter()
            .map(|p| {
                (
                    slot_of(p.enter_time_s, self.slot_s),
                    p.segment.0,
                    p.date,
                    p.traj_id,
                )
            })
            .collect();
        obs.sort_unstable();

        // Group boundaries over the sorted observations: one half-open
        // `[start, end)` range per (slot, segment) pair.
        let mut groups: Vec<(usize, usize)> = Vec::new();
        let mut i = 0;
        while i < obs.len() {
            let start = i;
            let (slot, segment) = (obs[i].0, obs[i].1);
            while i < obs.len() && obs[i].0 == slot && obs[i].1 == segment {
                i += 1;
            }
            groups.push((start, i));
        }

        // Read + merge + encode per group in parallel: the groups are
        // disjoint (slot, segment) pairs, so each worker reads the current
        // list (delta if present, else base), folds its observations in and
        // produces the merged encoding independently. Only the heap append
        // below is ordered.
        let encoding = state.delta.postings.encoding();
        let merged: Vec<(Vec<u8>, bool)> = streach_par::try_par_map_with(
            &groups,
            TimeList::new,
            |list: &mut TimeList, &(start, end)| -> StorageResult<(Vec<u8>, bool)> {
                let (slot, segment) = (obs[start].0, obs[start].1);
                let is_new = match state.lookup(SegmentId(segment), self.wrap_slot(slot)) {
                    Some(list_ref) => {
                        *list = state.read_time_list(list_ref)?;
                        false
                    }
                    None => {
                        list.entries.clear();
                        true
                    }
                };
                for &(_, _, date, traj_id) in &obs[start..end] {
                    list.add(date, traj_id);
                }
                Ok((list.encode_as(encoding), is_new))
            },
        )?;

        // Sequential appends in sorted group order keep the delta heap's
        // byte layout identical to the old one-group-at-a-time fold, so
        // snapshots and compaction stay bit-deterministic.
        let mut touched = Vec::with_capacity(groups.len());
        for (&(start, end), (bytes, is_new)) in groups.iter().zip(&merged) {
            let (slot, segment) = (obs[start].0, obs[start].1);
            let handle = state.delta.postings.append(bytes)?;
            state.delta.insert(slot, segment, handle);
            // Stats are committed per group, so a batch that faults midway
            // has counted exactly the groups it applied: the retry counts
            // only the remainder's new lists (its re-merged groups resolve
            // as existing delta entries), keeping `num_time_lists` exact.
            // `num_observations` counts re-processed points again on such
            // a retry — the documented at-least-once counter semantics.
            let mut stats = self.stats.lock();
            if *is_new {
                stats.num_time_lists += 1;
            }
            stats.num_observations += (end - start) as u64;
            drop(stats);
            touched.push((self.wrap_slot(slot), segment));
        }
        Ok(touched)
    }

    /// Folds the delta tail into a **new sealed base**: every (slot,
    /// segment) list — overridden or untouched — is laid out slot by slot,
    /// segment by segment in a fresh in-memory heap, a new temporal
    /// directory is built over it and the delta is emptied. The result is
    /// byte-identical to the heap [`StIndex::build`] would produce on the
    /// combined data, so post-compaction queries and snapshots are
    /// bit-exact with a from-scratch rebuild.
    ///
    /// The per-list blob copies are read in parallel via `streach_par`
    /// worker threads (the dominant cost); the ordered append into the new
    /// heap is a single linear pass. On `Err` (a read fault while copying)
    /// the index is left untouched: the old base keeps serving and the
    /// compaction is retryable.
    ///
    /// The whole fold runs against a pinned state **off to the side** —
    /// concurrent queries keep reading the old (base, delta) pair the whole
    /// time — and the result is published with one pointer swap. Callers
    /// serialize through the engine's ingest lock, so the delta cannot grow
    /// between the pin and the swap.
    pub(crate) fn compact(&self) -> StorageResult<DeltaStats> {
        let state = self.pin();
        let folded = state.delta_stats();
        if folded.delta_lists == 0 {
            return Ok(folded);
        }

        // Merged directory: base entries overridden by delta entries, in
        // (slot, segment) order — the clustered layout `build` produces.
        let mut merged: BTreeMap<(u32, u32), ListRef> = BTreeMap::new();
        for (slot, dir) in state.base.temporal.iter() {
            for (segment, handle) in &dir.entries {
                merged.insert((slot as u32, segment.0), ListRef::Base(*handle));
            }
        }
        for (key, handle) in state.delta.sorted_entries() {
            merged.insert(key, ListRef::Delta(handle));
        }

        // Copy every blob out (parallel reads against both heaps).
        let entries: Vec<((u32, u32), ListRef)> = merged.into_iter().collect();
        let blobs: Vec<Vec<u8>> = streach_par::try_par_map_with(
            &entries,
            Vec::new,
            |buf: &mut Vec<u8>, (_, list_ref)| -> StorageResult<Vec<u8>> {
                state.read_into(*list_ref, buf)?;
                Ok(buf.clone())
            },
        )?;

        // Lay the new sealed base out in order.
        let io = state.base.postings.io_stats();
        let read_latency = state.base.postings.store().read_latency();
        let pool_pages = state.base.postings.pool_capacity();
        let read_retries = state.base.postings.read_retries();
        // Blob bytes are copied verbatim below, so the new heap keeps the
        // old heap's encoding — tagged blobs stay tagged, legacy heaps stay
        // untagged and self-consistent.
        let encoding = state.base.postings.encoding();
        let store = SimulatedDiskStore::with_latency(
            Box::new(InMemoryPageStore::with_stats(Arc::clone(&io))) as Box<dyn PageStore>,
            read_latency,
            Duration::ZERO,
        );
        let new_postings = PostingStore::with_options(store, pool_pages, 0, read_retries, encoding);
        let mut temporal = BPlusTree::with_order(32);
        let mut directory = SlotDirectory::default();
        let mut num_time_lists = 0u64;
        for (index, ((slot, segment), _)) in entries.iter().enumerate() {
            let handle = new_postings.append(&blobs[index])?;
            directory.entries.push((SegmentId(*segment), handle));
            num_time_lists += 1;
            let next_slot = entries.get(index + 1).map(|((s, _), _)| *s);
            if next_slot != Some(*slot) {
                temporal.insert(*slot as u64, std::mem::take(&mut directory));
            }
        }
        let posting_bytes = new_postings.size_bytes();
        let posting_pages = new_postings.num_pages();

        // Publish: one pointer swap. Readers in flight finish on the old
        // state (kept alive by their pinned `Arc`s); new readers see the
        // fresh sealed base and an empty delta tail.
        let new_state = Arc::new(IndexState {
            base: SealedBase {
                temporal,
                postings: new_postings,
            },
            delta: Self::empty_delta(io, read_latency, pool_pages, read_retries, encoding),
        });
        *self.state.write() = new_state;
        let mut stats = self.stats.lock();
        stats.num_time_lists = num_time_lists;
        stats.posting_bytes = posting_bytes;
        stats.posting_pages = posting_pages;
        Ok(folded)
    }
}

/// [`StIndex`] is the canonical posting source the verifiers read from; a
/// sharded topology substitutes a router (see `crate::sharded`) behind the
/// same trait.
impl crate::query::verifier::PostingSource for StIndex {
    fn slot_s(&self) -> u32 {
        StIndex::slot_s(self)
    }

    fn num_days(&self) -> u16 {
        StIndex::num_days(self)
    }

    fn posting_encoding(&self) -> PostingEncoding {
        StIndex::posting_encoding(self)
    }

    fn io_stats(&self) -> Arc<IoStats> {
        StIndex::io_stats(self)
    }

    fn read_time_list_into(
        &self,
        segment: SegmentId,
        slot: u32,
        buf: &mut Vec<u8>,
    ) -> StorageResult<bool> {
        StIndex::read_time_list_into(self, segment, slot, buf)
    }

    fn malformed_posting(&self, segment: SegmentId, slot: u32) -> StorageError {
        StIndex::malformed_posting(self, segment, slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::FleetConfig;

    fn build_small() -> (Arc<RoadNetwork>, TrajectoryDataset, StIndex) {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(&network, FleetConfig::tiny());
        let index = StIndex::build(
            network.clone(),
            &dataset,
            &IndexConfig {
                read_latency_us: 0,
                ..Default::default()
            },
        );
        (network, dataset, index)
    }

    #[test]
    fn build_produces_consistent_stats() {
        let (_, dataset, index) = build_small();
        let stats = index.stats();
        let total_visits: u64 = dataset.trajectories().iter().map(|t| t.len() as u64).sum();
        assert_eq!(stats.num_observations, total_visits);
        assert!(stats.num_time_lists > 0);
        assert!(stats.num_time_lists <= total_visits);
        assert!(stats.posting_bytes > 0);
        assert!(stats.posting_pages > 0);
        assert_eq!(index.num_days(), dataset.num_days());
        assert_eq!(index.slot_s(), 300);
    }

    #[test]
    fn time_lists_round_trip_every_visit() {
        let (_, dataset, index) = build_small();
        // Every visit in the dataset must be present in the corresponding
        // time list.
        for traj in dataset.trajectories().iter().take(5) {
            for visit in traj.visits.iter().take(50) {
                let slot = slot_of(visit.enter_time_s, index.slot_s());
                let list = index
                    .time_list(visit.segment, slot)
                    .expect("in-memory read cannot fault")
                    .expect("visited segment must have a time list");
                let ids = list.ids_on(traj.date).expect("date entry present");
                assert!(ids.contains(&traj.traj_id));
            }
        }
    }

    #[test]
    fn ids_in_window_filters_by_date_and_time() {
        let (_, dataset, index) = build_small();
        let traj = &dataset.trajectories()[0];
        let visit = traj.visits[traj.visits.len() / 2];
        // A window around the visit on the right date contains the trajectory.
        let ids = index
            .ids_in_window(
                visit.segment,
                visit.enter_time_s,
                visit.enter_time_s + 60,
                traj.date,
            )
            .unwrap();
        assert!(ids.contains(&traj.traj_id));
        // A different (non-existent) date does not.
        let ids_other = index
            .ids_in_window(
                visit.segment,
                visit.enter_time_s,
                visit.enter_time_s + 60,
                200,
            )
            .unwrap();
        assert!(!ids_other.contains(&traj.traj_id));
        // A window long before the visit (01:00-01:05, fleet starts at 08:00) is empty.
        let ids_before = index
            .ids_in_window(visit.segment, 3600, 3900, traj.date)
            .unwrap();
        assert!(ids_before.is_empty());
        // Results are sorted and unique.
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn missing_segment_slot_is_none() {
        let (network, _, index) = build_small();
        // Slot 0 corresponds to 00:00-00:05; the tiny fleet only operates
        // from 08:00, so no list exists there.
        let seg = network.segment_ids().next().unwrap();
        assert_eq!(index.time_list(seg, 0).unwrap(), None);
        assert!(!index.has_entry(seg, 0));
        assert!(index.ids_in_window(seg, 0, 300, 0).unwrap().is_empty());
    }

    #[test]
    fn locate_segment_matches_network_lookup() {
        let (network, _, index) = build_small();
        let p = network.bounds().center();
        assert_eq!(
            index.locate_segment(&p),
            network.nearest_segment(&p).map(|(id, _)| id)
        );
    }

    #[test]
    fn reads_are_counted_as_io() {
        let (_, dataset, index) = build_small();
        let traj = &dataset.trajectories()[0];
        let visit = traj.visits[0];
        index.clear_cache();
        index.io_stats().reset();
        let slot = slot_of(visit.enter_time_s, index.slot_s());
        let _ = index.time_list(visit.segment, slot);
        let snap = index.io_stats().snapshot();
        assert!(
            snap.page_reads >= 1,
            "a cold read must touch at least one page"
        );
        // Reading it again is served by the buffer pool.
        let _ = index.time_list(visit.segment, slot);
        let snap2 = index.io_stats().snapshot();
        assert_eq!(snap2.page_reads, snap.page_reads);
        assert!(snap2.cache_hits > snap.cache_hits);
    }

    #[test]
    fn populated_slots_cover_operating_hours_only() {
        let (_, _, index) = build_small();
        let slots: Vec<u32> = index.populated_slots().collect();
        assert!(!slots.is_empty());
        // Tiny fleet operates 08:00-12:00 => slots 96..144 (Δt = 5 min).
        assert!(*slots.first().unwrap() >= 90);
        assert!(*slots.last().unwrap() <= 150);
        assert!(slots.windows(2).all(|w| w[0] < w[1]));
    }
}
