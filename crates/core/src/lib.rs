//! `streach-core` — the paper's primary contribution.
//!
//! This crate implements the data-driven **spatio-temporal reachability
//! query** framework of *"Mining Spatio-Temporal Reachable Regions over
//! Massive Trajectory Data"* (Ding, ICDE/WPI 2017):
//!
//! * [`st_index`] — the **ST-Index**: a temporal B-tree over Δt time slots,
//!   a spatial R-tree over the re-segmented road network, and per
//!   (segment, slot) *time lists* (date → trajectory IDs) stored on pages,
//! * [`con_index`] — the **Con-Index**: per time slot and road segment, the
//!   Near ID list (reachable within one Δt at the historical minimum speed)
//!   and the Far ID list (at the historical maximum speed),
//! * [`query`] — the query processing algorithms: the exhaustive-search
//!   baseline (**ES**), the single-location maximum/minimum bounding region
//!   search (**SQMB**), the trace back search (**TBS**) and the
//!   multi-location bounding region search (**MQMB**),
//! * [`engine`] — a high-level [`ReachabilityEngine`](engine::ReachabilityEngine)
//!   tying indexes and algorithms together behind one public API,
//! * [`builder`] — index construction from a road network plus a
//!   map-matched trajectory dataset,
//! * [`region`] / [`geojson`] — query results and their export,
//! * [`stats`] — per-query runtime/I-O accounting used by the benchmarks.
//!
//! # Quick start
//!
//! ```
//! use streach_core::prelude::*;
//!
//! // 1. A (synthetic) city and a simulated taxi fleet.
//! let city = SyntheticCity::generate(GeneratorConfig::small());
//! let network = std::sync::Arc::new(city.network);
//! let dataset = TrajectoryDataset::simulate(
//!     &network,
//!     FleetConfig { num_taxis: 10, num_days: 4, ..FleetConfig::tiny() },
//! );
//!
//! // 2. Build the indexes.
//! let engine = EngineBuilder::new(network.clone(), &dataset)
//!     .index_config(IndexConfig { slot_s: 300, ..IndexConfig::default() })
//!     .build();
//!
//! // 3. Ask a single-location reachability query (11:00, 10 minutes, 25%).
//! let query = SQuery {
//!     location: network.bounds().center(),
//!     start_time_s: 9 * 3600,
//!     duration_s: 600,
//!     prob: 0.25,
//! };
//! let outcome = engine.s_query(&query, Algorithm::SqmbTbs);
//! println!("reachable road length: {:.1} km", outcome.region.total_length_km);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod con_index;
pub mod config;
pub mod engine;
pub mod geojson;
pub mod query;
pub mod region;
pub mod speed_stats;
pub mod st_index;
pub mod stats;
pub mod time;

pub use builder::EngineBuilder;
pub use con_index::{ConIndex, ConnectionLists};
pub use config::IndexConfig;
pub use engine::ReachabilityEngine;
pub use query::{Algorithm, MQuery, QueryOutcome, SQuery};
pub use region::ReachableRegion;
pub use speed_stats::SpeedStats;
pub use st_index::StIndex;
pub use stats::QueryStats;

/// Convenient re-exports for downstream users (examples, benches, tests).
pub mod prelude {
    pub use crate::builder::EngineBuilder;
    pub use crate::config::IndexConfig;
    pub use crate::engine::ReachabilityEngine;
    pub use crate::geojson::region_to_geojson;
    pub use crate::query::{Algorithm, MQuery, QueryOutcome, SQuery};
    pub use crate::region::ReachableRegion;
    pub use crate::stats::QueryStats;
    pub use streach_geo::GeoPoint;
    pub use streach_roadnet::{GeneratorConfig, RoadNetwork, SegmentId, SyntheticCity};
    pub use streach_traj::{FleetConfig, TrajectoryDataset};
}
