//! `streach-core` — the paper's primary contribution.
//!
//! This crate implements the data-driven **spatio-temporal reachability
//! query** framework of *"Mining Spatio-Temporal Reachable Regions over
//! Massive Trajectory Data"* (Ding, ICDE/WPI 2017):
//!
//! * [`st_index`] — the **ST-Index**: a temporal B-tree over Δt time slots,
//!   a spatial R-tree over the re-segmented road network, and per
//!   (segment, slot) *time lists* (date → trajectory IDs) stored on pages,
//! * [`con_index`] — the **Con-Index**: per time slot and road segment, the
//!   Near ID list (reachable within one Δt at the historical minimum speed)
//!   and the Far ID list (at the historical maximum speed),
//! * [`query`] — the query processing algorithms: the exhaustive-search
//!   baseline (**ES**), the single-location maximum/minimum bounding region
//!   search (**SQMB**), the trace back search (**TBS**) and the
//!   multi-location bounding region search (**MQMB**),
//! * [`engine`] — a high-level [`ReachabilityEngine`](engine::ReachabilityEngine)
//!   tying indexes and algorithms together behind one public API,
//! * [`builder`] — index construction from a road network plus a
//!   map-matched trajectory dataset,
//! * [`snapshot`] — engine persistence: save a built engine to a snapshot
//!   directory and reopen it cold, without the trajectory dataset,
//! * [`region`] / [`geojson`] — query results and their export,
//! * [`stats`] — per-query runtime/I-O accounting used by the benchmarks.
//!
//! # Hot-path architecture
//!
//! The query path is built around three disciplines, established by the
//! zero-allocation refactor and verified by `tests/verifier_alloc.rs` and
//! `tests/equivalence.rs`:
//!
//! * **Workspace reuse + epoch stamping.** All Dijkstra runs (the ES travel
//!   cap, MQMB's per-start ownership distances) execute on a reusable
//!   [`DijkstraWorkspace`](streach_roadnet::DijkstraWorkspace): dense
//!   per-segment `dist`/`stamp` arrays that are invalidated by bumping an
//!   epoch counter instead of being cleared, with `f64::total_cmp` heap
//!   ordering (NaN-sound, deterministic tie-breaks). A run costs
//!   O(settled segments) and allocates nothing after the first use.
//! * **Day-indexed, zero-allocation verification.** The reachability
//!   verifier is split into a shareable
//!   [`VerifierCore`](query::verifier::VerifierCore) (the start segment's
//!   trajectory IDs as a `Vec` indexed by `date`, pre-sorted once) and a
//!   per-worker [`VerifierScratch`](query::verifier::VerifierScratch)
//!   (day-indexed candidate buckets, touched-day list, raw posting byte
//!   buffer). Postings are read through
//!   [`StIndex::read_time_list_into`](st_index::StIndex::read_time_list_into)
//!   into the recycled buffer and decoded in place with
//!   [`streach_storage::visit_posting`] (encoding-aware: raw fixed-width and
//!   delta/varint heaps take the same path), so each (segment, slot) posting
//!   is read exactly once per evaluation and a warm `probability()` call
//!   performs **zero heap allocations**.
//! * **Parallel stages.** The embarrassingly parallel stages — annulus
//!   verification in ES/TBS/MQMB, per-segment Con-Index table construction,
//!   and the sort-based (slot, segment) grouping of
//!   [`StIndex::build`](st_index::StIndex::build) — run on scoped threads
//!   via `streach_par` (one scratch per worker, results in input order).
//!   [`QueryStats`] reports per-stage `bounding_time`/`verify_time` so the
//!   split is measurable per query.
//! * **Fallible storage on the hot path.** Every posting read from
//!   [`StIndex::read_time_list_into`](st_index::StIndex::read_time_list_into)
//!   through [`VerifierCore::probability`](query::verifier::VerifierCore::probability)
//!   and the parallel ES/TBS/MQMB workers
//!   (`streach_par::try_par_map_with`: first error wins, remaining work
//!   cancelled) up to
//!   [`ReachabilityEngine::try_s_query`](engine::ReachabilityEngine::try_s_query) /
//!   [`try_m_query`](engine::ReachabilityEngine::try_m_query) returns a
//!   `Result`: a disk fault mid-query surfaces as
//!   [`QueryError::Storage`](query::QueryError::Storage) (page id +
//!   backend context) and the engine keeps serving. The deterministic
//!   fault-injection harness (`streach_storage::FaultInjectingPageStore`
//!   under [`ReachabilityEngine::open_snapshot_with_store`](engine::ReachabilityEngine::open_snapshot_with_store),
//!   driven by `tests/fault_injection.rs`) scripts an EIO at every
//!   posting-read ordinal of every pipeline to keep the error paths honest.
//! * **Online maintenance.** The ST-Index state (sealed base + delta tail)
//!   sits behind one swappable `Arc`: readers pin a consistent pair per
//!   read, so compaction builds its new base off to the side and publishes
//!   it with a single pointer swap — queries never block on maintenance.
//!   [`maintenance::MaintenanceController`] runs auto-checkpoints and
//!   compactions on a background thread, and WAL group commit lets
//!   concurrent ingest callers share one fsync
//!   (`tests/concurrent_maintenance.rs` pins the whole story with a seeded
//!   deterministic harness).
//!
//! The naive pre-refactor implementations are preserved in
//! [`query::reference`] as the equivalence baseline and the benchmark
//! anchor for `BENCH_hotpath.json` (see the "Benchmarking" section of
//! `ROADMAP.md`).
//!
//! # Quick start
//!
//! ```
//! use streach_core::prelude::*;
//!
//! // 1. A (synthetic) city and a simulated taxi fleet.
//! let city = SyntheticCity::generate(GeneratorConfig::small());
//! let network = std::sync::Arc::new(city.network);
//! let dataset = TrajectoryDataset::simulate(
//!     &network,
//!     FleetConfig { num_taxis: 10, num_days: 4, ..FleetConfig::tiny() },
//! );
//!
//! // 2. Build the indexes.
//! let engine = EngineBuilder::new(network.clone(), &dataset)
//!     .index_config(IndexConfig { slot_s: 300, ..IndexConfig::default() })
//!     .build();
//!
//! // 3. Ask a single-location reachability query (11:00, 10 minutes, 25%).
//! let query = SQuery {
//!     location: network.bounds().center(),
//!     start_time_s: 9 * 3600,
//!     duration_s: 600,
//!     prob: 0.25,
//! };
//! let outcome = engine.s_query(&query, Algorithm::SqmbTbs);
//! println!("reachable road length: {:.1} km", outcome.region.total_length_km);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod con_index;
pub mod config;
pub mod engine;
pub mod geojson;
pub mod ingest;
pub mod maintenance;
pub mod query;
pub mod region;
pub mod replicate;
pub mod serve;
pub mod sharded;
pub mod snapshot;
pub mod speed_stats;
pub mod st_index;
pub mod stats;
pub mod subscribe;
pub mod time;

pub use builder::EngineBuilder;
pub use con_index::{ConIndex, ConnectionLists};
pub use config::IndexConfig;
pub use engine::ReachabilityEngine;
pub use ingest::{IngestObserver, IngestOutcome, IngestTouch, WalAttach};
pub use maintenance::{
    MaintenanceConfig, MaintenanceController, MaintenanceError, MaintenanceStats,
};
pub use query::{Algorithm, MQuery, QueryError, QueryOutcome, SQuery};
pub use region::ReachableRegion;
pub use replicate::{
    ReplicaSet, ReplicaStatus, ReplicationConfig, ReplicationController, ReplicationEvent,
    ReplicationStats,
};
pub use serve::{QueryServer, ServeConfig, ServerStats, Ticket};
pub use sharded::{ReadPreference, ShardedEngine};
pub use snapshot::StoreRole;
pub use speed_stats::SpeedStats;
pub use st_index::{DeltaStats, StIndex};
pub use stats::QueryStats;
pub use streach_storage::{PostingEncoding, StorageBackend};
pub use subscribe::{
    ReachabilityEvent, SubscribeConfig, SubscribeError, SubscribeStats, SubscriptionEvent,
    SubscriptionId, SubscriptionManager, Trigger,
};

/// Convenient re-exports for downstream users (examples, benches, tests).
pub mod prelude {
    pub use crate::builder::EngineBuilder;
    pub use crate::config::IndexConfig;
    pub use crate::engine::ReachabilityEngine;
    pub use crate::geojson::region_to_geojson;
    pub use crate::ingest::{IngestOutcome, WalAttach};
    pub use crate::maintenance::{MaintenanceConfig, MaintenanceController};
    pub use crate::query::{Algorithm, MQuery, QueryError, QueryOutcome, SQuery};
    pub use crate::region::ReachableRegion;
    pub use crate::replicate::{
        ReplicaSet, ReplicaStatus, ReplicationConfig, ReplicationController, ReplicationEvent,
        ReplicationStats,
    };
    pub use crate::serve::{QueryServer, ServeConfig, ServerStats};
    pub use crate::sharded::{ReadPreference, ShardedEngine};
    pub use crate::stats::QueryStats;
    pub use crate::subscribe::{
        ReachabilityEvent, SubscribeConfig, SubscribeError, SubscribeStats, SubscriptionEvent,
        SubscriptionId, SubscriptionManager, Trigger,
    };
    pub use streach_geo::GeoPoint;
    pub use streach_roadnet::{GeneratorConfig, RoadNetwork, SegmentId, ShardMap, SyntheticCity};
    pub use streach_traj::{points_of, FleetConfig, TrajPoint, TrajectoryDataset};
}
