//! GeoJSON export of reachable regions.
//!
//! The paper visualises query results on Leaflet maps (Figures 4.2, 4.4, 4.6
//! and 4.9). This module renders a [`ReachableRegion`] as a GeoJSON
//! `FeatureCollection` of `LineString`s (one per road segment) that any map
//! viewer can display. The writer is hand-rolled so the workspace does not
//! need a JSON dependency.

use streach_roadnet::{RoadClass, RoadNetwork, SegmentId};

use crate::region::ReachableRegion;

fn class_name(class: RoadClass) -> &'static str {
    match class {
        RoadClass::Highway => "highway",
        RoadClass::Primary => "primary",
        RoadClass::Secondary => "secondary",
        RoadClass::Local => "local",
    }
}

fn push_segment_feature(out: &mut String, network: &RoadNetwork, id: SegmentId) {
    let seg = network.segment(id);
    out.push_str("{\"type\":\"Feature\",\"properties\":{");
    out.push_str(&format!(
        "\"segment\":{},\"class\":\"{}\",\"length_m\":{:.1}",
        id.0,
        class_name(seg.class),
        seg.length_m
    ));
    out.push_str("},\"geometry\":{\"type\":\"LineString\",\"coordinates\":[");
    for (i, p) in seg.geometry.points().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{:.6},{:.6}]", p.lon, p.lat));
    }
    out.push_str("]}}");
}

/// Renders a reachable region as a GeoJSON `FeatureCollection` string.
pub fn region_to_geojson(network: &RoadNetwork, region: &ReachableRegion) -> String {
    let mut out = String::with_capacity(region.len() * 160 + 64);
    out.push_str("{\"type\":\"FeatureCollection\",\"features\":[");
    for (i, &seg) in region.segments.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_segment_feature(&mut out, network, seg);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};

    #[test]
    fn empty_region_is_valid_feature_collection() {
        let net = SyntheticCity::generate(GeneratorConfig::small()).network;
        let json = region_to_geojson(&net, &ReachableRegion::empty());
        assert_eq!(json, "{\"type\":\"FeatureCollection\",\"features\":[]}");
    }

    #[test]
    fn features_match_segment_count_and_are_balanced() {
        let net = SyntheticCity::generate(GeneratorConfig::small()).network;
        let region =
            ReachableRegion::from_segments(&net, vec![SegmentId(0), SegmentId(5), SegmentId(9)]);
        let json = region_to_geojson(&net, &region);
        assert_eq!(json.matches("\"type\":\"Feature\"").count(), 3);
        assert_eq!(json.matches("LineString").count(), 3);
        // Braces and brackets are balanced.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Coordinates look like lon/lat in the city's range.
        assert!(json.contains("[113.") || json.contains("[114."));
        // Each feature carries its class and length.
        assert_eq!(json.matches("\"length_m\":").count(), 3);
    }

    #[test]
    fn class_names_cover_all_variants() {
        assert_eq!(class_name(RoadClass::Highway), "highway");
        assert_eq!(class_name(RoadClass::Primary), "primary");
        assert_eq!(class_name(RoadClass::Secondary), "secondary");
        assert_eq!(class_name(RoadClass::Local), "local");
    }
}
