//! The high-level reachability query engine.

use std::sync::{Arc, Condvar};
use std::time::Instant;

use parking_lot::Mutex;
use streach_roadnet::{RoadNetwork, SegmentId, ShardMap};
use streach_storage::{StorageError, StorageResult, Wal};
use streach_traj::TrajPoint;

use crate::con_index::ConIndex;
use crate::config::IndexConfig;
use crate::ingest::{
    IngestObserver, IngestOutcome, IngestState, IngestTouch, LastVisit, LastVisitMap, WalAttach,
};
use crate::query::es::exhaustive_search;
use crate::query::mqmb::{mqmb, mqmb_trace_back};
use crate::query::sqmb::{num_hops, sqmb};
use crate::query::tbs::trace_back_search;
use crate::query::verifier::VerifierCore;
use crate::query::{Algorithm, MQuery, MQueryAlgorithm, QueryError, QueryOutcome, SQuery};
use crate::region::ReachableRegion;
use crate::snapshot::StoreRole;
use crate::st_index::{DeltaStats, StIndex};
use crate::stats::QueryStats;
use crate::time::slot_of;

/// The spatio-temporal reachability query engine: the ST-Index, the
/// Con-Index and the query processing algorithms behind one façade.
///
/// Use [`crate::builder::EngineBuilder`] to construct one from a road network
/// and a trajectory dataset.
pub struct ReachabilityEngine {
    network: Arc<RoadNetwork>,
    st_index: StIndex,
    con_index: ConIndex,
    config: IndexConfig,
    /// Streaming-ingest state: the attached WAL, its bookkeeping and the
    /// per-trajectory last-visit table (see [`crate::ingest`]). Held for
    /// the duration of a snapshot save or a compaction, so maintenance
    /// sees a frozen delta — queries never touch this lock. A `std` mutex
    /// (not the parking_lot shim) so group-committed ingest callers can
    /// block on [`ReachabilityEngine::apply_cv`] for their apply turn.
    ingest: std::sync::Mutex<IngestState>,
    /// Wakes ingest callers waiting to apply their WAL record in ordinal
    /// order, and callers parked behind a rotation.
    apply_cv: Condvar,
    /// (pages, CRC-32) of the base posting page file this engine was opened
    /// from, if any — lets an incremental save skip re-exporting an
    /// unchanged base heap. Cleared by [`ReachabilityEngine::compact`].
    base_pages: Mutex<Option<(u64, u32)>>,
    /// Sequence number of the most recently committed delta page file (see
    /// [`crate::snapshot::delta_pages_file`]); each save publishes the next
    /// one so a crash mid-save never clobbers the previous checkpoint.
    delta_seq: std::sync::atomic::AtomicU64,
    /// The snapshot directory this engine was opened from (or first saved
    /// to): the only directory whose saves may rotate the WAL — a backup
    /// save elsewhere must not discard records the home snapshot has not
    /// folded in.
    snapshot_home: Mutex<Option<std::path::PathBuf>>,
    /// Spatial ownership of a shard engine: the partition map and this
    /// engine's shard id. When set, [`ReachabilityEngine::apply_batch`]
    /// folds only owned segments into the ST-Index postings while the
    /// statistics layers (Con-Index speed pairs, day count, last-visit
    /// table) stay global — "postings sharded, statistics replicated" —
    /// so per-shard bounding regions match the single-engine ones exactly.
    /// Set once at build/open, before the engine is shared.
    shard: std::sync::OnceLock<(Arc<ShardMap>, u16)>,
    /// Whether snapshots of this engine embed the road network (set by
    /// [`ReachabilityEngine::save_snapshot_self_contained`] and by opening
    /// a self-contained snapshot). Once set, every later save — including
    /// incremental checkpoints — keeps the `road_network` section, so a
    /// replica bootstrapped from shipped artifacts stays bootstrappable.
    self_contained: std::sync::atomic::AtomicBool,
    /// Observers notified after every applied ingest batch with what it
    /// touched ([`IngestTouch`]), held weakly so a dropped consumer (a
    /// result cache, a metrics sink) unregisters itself. Notification runs
    /// under the ingest lock: a cache that invalidates in its callback can
    /// never observe the new postings before the invalidation.
    touch_observers: Mutex<Vec<std::sync::Weak<IngestObserver>>>,
}

impl ReachabilityEngine {
    pub(crate) fn new(
        network: Arc<RoadNetwork>,
        st_index: StIndex,
        con_index: ConIndex,
        config: IndexConfig,
    ) -> Self {
        Self {
            network,
            st_index,
            con_index,
            config,
            ingest: std::sync::Mutex::new(IngestState::default()),
            apply_cv: Condvar::new(),
            base_pages: Mutex::new(None),
            delta_seq: std::sync::atomic::AtomicU64::new(0),
            snapshot_home: Mutex::new(None),
            shard: std::sync::OnceLock::new(),
            self_contained: std::sync::atomic::AtomicBool::new(false),
            touch_observers: Mutex::new(Vec::new()),
        }
    }

    /// Registers an ingest observer: `observer` is called after every
    /// successfully applied batch — live ingest, WAL replay on attach, or
    /// replicated apply — with the [`IngestTouch`] describing what the
    /// batch changed. The engine keeps only a [`std::sync::Weak`]
    /// reference, so dropping the `Arc` unregisters the observer.
    ///
    /// Callbacks run under the ingest lock and must not call back into
    /// ingest, compaction or snapshotting; queries are fine.
    pub fn observe_ingest(&self, observer: &Arc<IngestObserver>) {
        self.touch_observers.lock().push(Arc::downgrade(observer));
    }

    /// Delivers `touch` to the registered observers, dropping the dead ones.
    fn notify_touch(&self, touch: &IngestTouch) {
        if touch.is_empty() {
            return;
        }
        let mut observers = self.touch_observers.lock();
        observers.retain(|weak| match weak.upgrade() {
            Some(observer) => {
                observer(touch);
                true
            }
            None => false,
        });
    }

    /// Declares this engine a shard: batches fold only postings of segments
    /// `map` assigns to `shard_id` (statistics stay global). Must be set
    /// before any points are applied; a second call is ignored.
    pub(crate) fn set_shard_ownership(&self, map: Arc<ShardMap>, shard_id: u16) {
        let _ = self.shard.set((map, shard_id));
    }

    /// The shard ownership of this engine, if it is a shard of a partition.
    pub fn shard_ownership(&self) -> Option<(Arc<ShardMap>, u16)> {
        self.shard.get().cloned()
    }

    /// Current WAL position of this engine: (generation, applied records).
    /// For a leader this advances with ingest; for a replica it advances as
    /// shipped records are applied — the replication-lag observable.
    pub fn wal_position(&self) -> (u64, u64) {
        let state = self.ingest_state();
        (state.wal_generation, state.wal_applied)
    }

    /// The engine's attached WAL handle, if any — the fencing hook: a
    /// promotion fences the deposed leader through this handle so no write
    /// can be acked after the replica takes over.
    pub(crate) fn wal_handle(&self) -> Option<Arc<streach_storage::Wal>> {
        self.ingest_state().wal.clone()
    }

    /// Locks the ingest state (poisoning is translated to "keep going with
    /// the inner data", matching the parking_lot behaviour used elsewhere).
    fn ingest_state(&self) -> std::sync::MutexGuard<'_, IngestState> {
        self.ingest.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parks the caller on the apply condition variable.
    fn wait_apply_turn<'a>(
        &self,
        guard: std::sync::MutexGuard<'a, IngestState>,
    ) -> std::sync::MutexGuard<'a, IngestState> {
        self.apply_cv.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// The sequence number the next saved delta page file should use.
    pub(crate) fn next_delta_seq(&self) -> u64 {
        self.delta_seq.load(std::sync::atomic::Ordering::SeqCst) + 1
    }

    /// Records the sequence number of a committed delta page file.
    pub(crate) fn commit_delta_seq(&self, seq: u64) {
        self.delta_seq
            .fetch_max(seq, std::sync::atomic::Ordering::SeqCst);
    }

    /// Records the directory this engine's snapshot state lives in.
    pub(crate) fn set_snapshot_home(&self, dir: &std::path::Path) {
        let mut home = self.snapshot_home.lock();
        if home.is_none() {
            *home = std::fs::canonicalize(dir).ok();
        }
    }

    /// Installs the metadata a snapshot open recovered: the base page
    /// file's identity and the WAL bookkeeping (see [`crate::snapshot`]).
    pub(crate) fn install_snapshot_meta(
        &self,
        base_pages: (u64, u32),
        wal_generation: u64,
        wal_applied: u64,
        last_visit: LastVisitMap,
    ) {
        *self.base_pages.lock() = Some(base_pages);
        let mut state = self.ingest_state();
        state.wal_generation = wal_generation;
        state.wal_applied = wal_applied;
        state.last_visit = last_visit;
    }

    /// Seeds the last-visit table from a batch dataset (see
    /// [`crate::builder::EngineBuilder::build`]).
    pub(crate) fn seed_last_visit(&self, dataset: &streach_traj::TrajectoryDataset) {
        let mut state = self.ingest_state();
        for traj in dataset.trajectories() {
            if let Some(last) = traj.visits.last() {
                state.last_visit.insert(
                    (traj.traj_id, traj.date),
                    LastVisit {
                        segment: last.segment.0,
                        enter_time_s: last.enter_time_s,
                    },
                );
            }
        }
    }

    /// The ingest bookkeeping to persist, captured under the ingest lock
    /// the caller already holds for the whole save.
    pub(crate) fn encode_ingest_meta(state: &IngestState) -> Vec<u8> {
        crate::ingest::encode_ingest_meta(
            state.wal_generation,
            state.wal_applied,
            &state.last_visit,
        )
    }

    /// The recorded identity of the base page file, if this engine still
    /// serves the heap it was opened from.
    pub(crate) fn base_pages_identity(&self) -> Option<(u64, u32)> {
        *self.base_pages.lock()
    }

    /// Records the identity of a freshly exported base page file.
    pub(crate) fn set_base_pages_identity(&self, identity: (u64, u32)) {
        *self.base_pages.lock() = Some(identity);
    }

    /// The road network.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.network
    }

    /// The ST-Index.
    pub fn st_index(&self) -> &StIndex {
        &self.st_index
    }

    /// The Con-Index.
    pub fn con_index(&self) -> &ConIndex {
        &self.con_index
    }

    /// The index configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Persists the engine into a snapshot directory (see
    /// [`crate::snapshot`]): the ST-Index posting heap as a real page file,
    /// the delta heap of any ingested data as a second page file, plus a
    /// checksummed container holding the temporal and delta directories,
    /// the speed statistics, the cached Con-Index tables, the ingest
    /// bookkeeping and the configuration. All files are fsynced before this
    /// returns. The ingest lock is held throughout, so the saved state is a
    /// consistent cut even while other threads keep querying.
    pub fn save_snapshot<P: AsRef<std::path::Path>>(
        &self,
        dir: P,
    ) -> streach_storage::StorageResult<()> {
        self.save_impl(dir.as_ref(), false)
    }

    /// Like [`ReachabilityEngine::save_snapshot`], but embeds the road
    /// network itself (a `road_network` section, bit-exact codec) so the
    /// snapshot directory is **self-contained**: a replica host opens it
    /// with [`ReachabilityEngine::open_snapshot_standalone`] from shipped
    /// artifacts alone, no out-of-band map data needed. The embedded
    /// network is still validated against the stored fingerprint at open.
    /// Self-containedness is sticky: every later save of this engine —
    /// including incremental checkpoints — keeps the section.
    pub fn save_snapshot_self_contained<P: AsRef<std::path::Path>>(
        &self,
        dir: P,
    ) -> streach_storage::StorageResult<()> {
        self.self_contained
            .store(true, std::sync::atomic::Ordering::SeqCst);
        self.save_impl(dir.as_ref(), false)
    }

    /// Whether saves of this engine embed the road network (see
    /// [`ReachabilityEngine::save_snapshot_self_contained`]).
    pub(crate) fn snapshot_self_contained(&self) -> bool {
        self.self_contained
            .load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Marks this engine as opened from a self-contained snapshot, so
    /// checkpoints keep embedding the network.
    pub(crate) fn set_snapshot_self_contained(&self) {
        self.self_contained
            .store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Like [`ReachabilityEngine::save_snapshot`], but skips re-exporting
    /// the base posting page file when the target directory already holds
    /// the heap this engine was opened from (length-checked here; the
    /// CRC-32 recorded in the container is verified at open, so in-place
    /// rot cannot be served) — the fast path for a serving process that
    /// periodically checkpoints its streaming ingest: only the container,
    /// the small delta heap and the bookkeeping are rewritten.
    pub fn save_incremental_snapshot<P: AsRef<std::path::Path>>(
        &self,
        dir: P,
    ) -> streach_storage::StorageResult<()> {
        self.save_impl(dir.as_ref(), true)
    }

    fn save_impl(&self, dir: &std::path::Path, incremental: bool) -> StorageResult<()> {
        let mut state = self.ingest_state();
        crate::snapshot::save(self, dir, incremental, &state)?;
        self.set_snapshot_home(dir);
        // Every WAL record this snapshot covers never needs replaying:
        // start a fresh generation — but ONLY when the save went to the
        // engine's home directory. A backup saved elsewhere must not
        // discard records the home snapshot (the one a restart will open)
        // has not folded in. Also suppressed when a failed application
        // left unapplied records in the log — those must survive for the
        // next attach to replay. The "is every record folded in?" check and
        // the rotation are atomic inside the WAL, so a group-commit append
        // racing this checkpoint can never be discarded: either it landed
        // before the check (rotation is skipped, the record replays from
        // the log) or it lands in the fresh generation.
        let saved_to_home = std::fs::canonicalize(dir)
            .ok()
            .zip(self.snapshot_home.lock().clone())
            .is_some_and(|(a, b)| a == b);
        if saved_to_home && !state.prefix_broken {
            if let Some(wal) = &state.wal {
                if let Some(generation) = wal.rotate_if_applied(state.wal_applied)? {
                    state.wal_generation = generation;
                    state.wal_applied = 0;
                    state.apply_cursor = 0;
                    self.apply_cv.notify_all();
                }
            }
        }
        Ok(())
    }

    /// Reopens an engine from a snapshot directory **without touching the
    /// trajectory dataset**. The road network is a static input and is
    /// validated against the fingerprint stored in the snapshot; posting
    /// reads on the reopened engine are genuine page I/O against the
    /// snapshot's page file.
    pub fn open_snapshot<P: AsRef<std::path::Path>>(
        dir: P,
        network: Arc<RoadNetwork>,
    ) -> streach_storage::StorageResult<Self> {
        Self::open_snapshot_with_store(dir, network, |store| store)
    }

    /// Reopens an engine from a **self-contained** snapshot (one saved with
    /// [`ReachabilityEngine::save_snapshot_self_contained`]) without any
    /// external input: the road network is decoded from the snapshot's own
    /// `road_network` section, then validated against the stored
    /// fingerprint like every other open. This is how a replica host
    /// bootstraps from shipped artifacts alone. Fails with
    /// [`streach_storage::StorageError::Corrupt`] when the snapshot was not
    /// saved self-contained.
    pub fn open_snapshot_standalone<P: AsRef<std::path::Path>>(
        dir: P,
    ) -> streach_storage::StorageResult<Self> {
        let network = crate::snapshot::read_embedded_network(dir.as_ref())?;
        crate::snapshot::open(dir.as_ref(), network, None, |_, store| store)
    }

    /// Like [`ReachabilityEngine::open_snapshot`], but serves the sealed
    /// page files through an explicit [`streach_storage::StorageBackend`]
    /// instead of the one recorded in the snapshot config: buffered file
    /// reads (`File`) or a read-only memory mapping (`Mmap`). The override
    /// only affects how pages are *read*; the on-disk bytes and every query
    /// answer are identical across backends.
    pub fn open_snapshot_with_backend<P: AsRef<std::path::Path>>(
        dir: P,
        network: Arc<RoadNetwork>,
        backend: streach_storage::StorageBackend,
    ) -> streach_storage::StorageResult<Self> {
        Self::open_snapshot_with_stores_and_backend(dir, network, Some(backend), |_, store| store)
    }

    /// Like [`ReachabilityEngine::open_snapshot`], but lets the caller wrap
    /// the snapshot's page store before the engine takes ownership — the
    /// hook behind fault injection
    /// ([`streach_storage::FaultInjectingPageStore`] in
    /// `tests/fault_injection.rs`), and useful for any instrumentation
    /// wrapper (metrics, tracing) that should sit under the buffer pool.
    /// The wrapper sees the already-validated [`streach_storage::FilePageStore`];
    /// whatever it returns serves every posting read of the engine's life.
    pub fn open_snapshot_with_store<P, F>(
        dir: P,
        network: Arc<RoadNetwork>,
        wrap: F,
    ) -> streach_storage::StorageResult<Self>
    where
        P: AsRef<std::path::Path>,
        F: FnOnce(Box<dyn streach_storage::PageStore>) -> Box<dyn streach_storage::PageStore>,
    {
        let mut wrap = Some(wrap);
        Self::open_snapshot_with_stores(dir, network, move |role, store| match role {
            StoreRole::Base => (wrap.take().expect("base store is wrapped once"))(store),
            StoreRole::Delta => store,
        })
    }

    /// The most general snapshot open: `wrap` is called once per page store
    /// the engine will read from — the sealed **base** heap and the
    /// **delta** heap of previously ingested data (in that order) — so
    /// fault injection and instrumentation cover the streaming-ingest read
    /// and write paths too.
    pub fn open_snapshot_with_stores<P, F>(
        dir: P,
        network: Arc<RoadNetwork>,
        wrap: F,
    ) -> streach_storage::StorageResult<Self>
    where
        P: AsRef<std::path::Path>,
        F: FnMut(
            StoreRole,
            Box<dyn streach_storage::PageStore>,
        ) -> Box<dyn streach_storage::PageStore>,
    {
        Self::open_snapshot_with_stores_and_backend(dir, network, None, wrap)
    }

    /// [`ReachabilityEngine::open_snapshot_with_stores`] plus an optional
    /// [`streach_storage::StorageBackend`] override for the sealed page
    /// files (`None` uses the backend recorded in the snapshot config).
    /// Fault campaigns use this to run the same wrap script against both
    /// the buffered-file and the memory-mapped backend.
    pub fn open_snapshot_with_stores_and_backend<P, F>(
        dir: P,
        network: Arc<RoadNetwork>,
        backend: Option<streach_storage::StorageBackend>,
        wrap: F,
    ) -> streach_storage::StorageResult<Self>
    where
        P: AsRef<std::path::Path>,
        F: FnMut(
            StoreRole,
            Box<dyn streach_storage::PageStore>,
        ) -> Box<dyn streach_storage::PageStore>,
    {
        crate::snapshot::open(dir.as_ref(), network, backend, wrap)
    }

    /// Attaches a write-ahead log at `path` (created if missing) and
    /// replays every record the engine's snapshot has not folded in yet:
    /// after a crash the delta postings, speed statistics and day count are
    /// reconstructed exactly. Records already covered by the snapshot
    /// (matching generation, applied prefix) are skipped. Subsequent
    /// [`ReachabilityEngine::ingest`] calls log through this WAL.
    pub fn attach_wal<P: AsRef<std::path::Path>>(&self, path: P) -> StorageResult<WalAttach> {
        let (wal, records, recovery) = Wal::open(path)?;
        self.attach_wal_impl(wal, records, recovery)
    }

    /// Like [`ReachabilityEngine::attach_wal`], with the WAL's appends
    /// scripted by a fault controller (crash-recovery campaigns; see
    /// [`streach_storage::fault`]).
    pub fn attach_wal_with_controller<P: AsRef<std::path::Path>>(
        &self,
        path: P,
        controller: streach_storage::FaultController,
    ) -> StorageResult<WalAttach> {
        let (wal, records, recovery) = Wal::open_with_controller(path, controller)?;
        self.attach_wal_impl(wal, records, recovery)
    }

    fn attach_wal_impl(
        &self,
        wal: Wal,
        records: Vec<Vec<u8>>,
        recovery: streach_storage::WalRecovery,
    ) -> StorageResult<WalAttach> {
        let mut state = self.ingest_state();
        if state.wal.is_some() {
            return Err(StorageError::corrupt(
                "a write-ahead log is already attached to this engine",
            ));
        }
        // Records of the generation the snapshot knows are skipped up to
        // the applied prefix; a rotated (newer) generation replays in full.
        let records_skipped = if recovery.generation == state.wal_generation {
            state.wal_applied.min(recovery.records)
        } else {
            0
        };
        state.wal_generation = recovery.generation;
        state.wal_applied = records_skipped;
        state.prefix_broken = false;

        let mut records_replayed = 0u64;
        let mut points_replayed = 0u64;
        for (index, record) in records.iter().enumerate().skip(records_skipped as usize) {
            let record = crate::ingest::decode_record(record)?;
            // A CRC-valid record can still carry points this engine cannot
            // apply (e.g. a WAL written against a different network — logs,
            // unlike snapshots, carry no fingerprint): reject it typed
            // instead of indexing out of bounds.
            self.validate_points(&record.points).map_err(|e| {
                StorageError::corrupt(format!("WAL record #{index} failed validation: {e}"))
            })?;
            self.apply_batch(&record.points, &mut state, record.prenormalized, None)?;
            state.wal_applied += 1;
            records_replayed += 1;
            points_replayed += record.points.len() as u64;
        }
        // Every record in the log is now folded in; the next appended
        // record gets ordinal `recovery.records` and applies first.
        state.apply_cursor = recovery.records;
        state.wal = Some(Arc::new(wal));
        Ok(WalAttach {
            generation: recovery.generation,
            records_skipped,
            records_replayed,
            points_replayed,
            truncated_bytes: recovery.truncated_bytes,
        })
    }

    /// Ingests a batch of map-matched trajectory points into the serving
    /// engine — no rebuild, no downtime. When a WAL is attached
    /// ([`ReachabilityEngine::attach_wal`]) the batch is framed, appended
    /// and fsynced **before** it is applied, so an acknowledged batch
    /// survives a crash; without one, ingest is volatile (tests, bulk
    /// loads). Application folds the points into the ST-Index delta
    /// postings, derives consecutive-visit speed observations for the
    /// Con-Index statistics (cached connection tables are invalidated when
    /// any were produced) and raises the day count `m` — after which every
    /// query pipeline answers over base + delta exactly as a from-scratch
    /// rebuild on the combined data would.
    ///
    /// **Concurrent callers group-commit.** The WAL append and fsync run
    /// without the engine's ingest lock, so N simultaneous `ingest` calls
    /// share one physical fsync ([`streach_storage::Wal::sync`]); a failed
    /// group fsync fails every caller in the group and freezes the applied
    /// prefix (replay after reopen re-applies the survivors idempotently).
    /// Application then proceeds strictly in WAL-record order, so the live
    /// engine is bit-identical to what replaying the log would build.
    ///
    /// Batches are validated up front: a point naming a segment outside
    /// the road network is rejected before anything is logged or applied.
    pub fn ingest(&self, points: &[TrajPoint]) -> StorageResult<IngestOutcome> {
        self.ingest_impl(points, false, None)
    }

    /// Like [`ReachabilityEngine::ingest`], additionally returning the
    /// **full-batch normalized** point sequence (re-entries dropped, before
    /// any shard-ownership filter). The sharded router's statistics leader
    /// uses this to owner-route the batch: the other shards receive exactly
    /// these points, pre-normalized, so their postings match what the
    /// full-batch pipeline would have indexed bit for bit.
    pub(crate) fn ingest_capturing(
        &self,
        points: &[TrajPoint],
    ) -> StorageResult<(IngestOutcome, Vec<TrajPoint>)> {
        let mut normalized = Vec::with_capacity(points.len());
        let outcome = self.ingest_impl(points, false, Some(&mut normalized))?;
        Ok((outcome, normalized))
    }

    /// Ingests an owner-routed, already-normalized batch (see
    /// [`crate::sharded::ShardedEngine::ingest`]): the points fold into the
    /// ST-Index postings only — no re-normalization, no speed pairs, no
    /// last-visit staging — and the WAL record carries the pre-normalized
    /// tag so replay and replication apply it the same way.
    pub(crate) fn ingest_prenormalized(
        &self,
        points: &[TrajPoint],
    ) -> StorageResult<IngestOutcome> {
        self.ingest_impl(points, true, None)
    }

    fn ingest_impl(
        &self,
        points: &[TrajPoint],
        prenormalized: bool,
        mut capture: Option<&mut Vec<TrajPoint>>,
    ) -> StorageResult<IngestOutcome> {
        self.validate_points(points)?;

        let wal = loop {
            // Snapshot the attachment without holding the ingest lock —
            // the durability phase below must run lock-free so concurrent
            // callers can batch into one fsync. (The peek lives in its own
            // statement so the guard is dropped before the match arms run.)
            let attached = { self.ingest_state().wal.clone() };
            match attached {
                Some(wal) => break wal,
                None => {
                    // Volatile path (no WAL): apply under the lock. Re-check
                    // the attachment — an `attach_wal` may have won the race
                    // between the peek above and this lock.
                    let mut state = self.ingest_state();
                    if state.wal.is_some() {
                        continue;
                    }
                    let (lists_touched, speed_observations) = self.apply_batch(
                        points,
                        &mut state,
                        prenormalized,
                        capture.as_deref_mut(),
                    )?;
                    return Ok(IngestOutcome {
                        points: points.len(),
                        lists_touched,
                        speed_observations,
                        wal_ordinal: None,
                    });
                }
            }
        };

        // Durability first, without the ingest lock: append, then group
        // fsync. A failed append leaves nothing in the log (or a poisoned
        // handle after a torn append) — nothing to skip or freeze.
        let payload = if prenormalized {
            crate::ingest::encode_prenormalized_batch(points)
        } else {
            crate::ingest::encode_batch(points)
        };
        let ordinal = wal.append(&payload)?;
        // Our record is appended but not yet applied, which pins the
        // generation: a checkpoint's `rotate_if_applied` cannot pass it.
        let generation = wal.generation();
        if let Err(e) = wal.sync() {
            // The record is in the log but not provably durable — and
            // neither is any other record of its commit group — and it was
            // not applied: freeze the applied prefix so the next attach
            // replays it (idempotently) if it did survive, and advance the
            // apply cursor past it so later group-committed records do not
            // wait forever for a record that will never apply live.
            let mut state = self.ingest_state();
            state.prefix_broken = true;
            while state.wal_generation == generation && state.apply_cursor < ordinal {
                state = self.wait_apply_turn(state);
            }
            if state.wal_generation == generation && state.apply_cursor == ordinal {
                state.apply_cursor = ordinal + 1;
                self.apply_cv.notify_all();
            }
            return Err(e);
        }

        // Apply strictly in WAL order: live application order then matches
        // replay order bit-exactly (the last-visit table and the derived
        // speed pairs are order-sensitive across batches of one
        // trajectory).
        let mut state = self.ingest_state();
        while state.wal_generation == generation && state.apply_cursor < ordinal {
            state = self.wait_apply_turn(state);
        }
        debug_assert!(
            state.wal_generation == generation && state.apply_cursor == ordinal,
            "apply ordering lost track of record {generation}/{ordinal}"
        );
        let applied = self.apply_batch(points, &mut state, prenormalized, capture);
        state.apply_cursor = state.apply_cursor.max(ordinal + 1);
        self.apply_cv.notify_all();
        match applied {
            Ok((lists_touched, speed_observations)) => {
                state.mark_applied();
                Ok(IngestOutcome {
                    points: points.len(),
                    lists_touched,
                    speed_observations,
                    wal_ordinal: Some(ordinal),
                })
            }
            Err(e) => {
                // The record is durable but its application failed: freeze
                // the applied prefix so replay at the next attach redoes it
                // (idempotently), and keep the log from rotating past it.
                state.prefix_broken = true;
                Err(e)
            }
        }
    }

    /// Applies one WAL record shipped from a leader, identified by its
    /// (generation, ordinal) position in the leader's log.
    ///
    /// This is the replica half of WAL shipping: the replica holds **no
    /// attached WAL of its own** — durability lives at the leader (and in
    /// the follower's shipped-frame log, see
    /// [`streach_storage::FollowerLog`]) — but its WAL bookkeeping tracks
    /// the applied position so lag is observable
    /// ([`ReachabilityEngine::wal_position`]) and a later
    /// [`ReachabilityEngine::attach_wal`] on the shipped log (failover
    /// promotion) skips everything already applied.
    ///
    /// Records at an already-applied position return `Ok(false)` without
    /// touching the index (re-applying a batch is NOT idempotent for the
    /// speed statistics, so at-least-once shipping needs this exact-once
    /// gate). A record of a new generation restarts the count — the
    /// shipping protocol converges a follower before the leader rotates, so
    /// a fresh generation always starts at ordinal 0. A gap within a
    /// generation is a protocol violation and surfaces as a typed error.
    /// `prenormalized` marks records the leader logged under the
    /// pre-normalized tag (owner-routed shard batches): they are applied
    /// postings-only, exactly as the leader applied them.
    pub fn apply_replicated(
        &self,
        generation: u64,
        ordinal: u64,
        points: &[TrajPoint],
        prenormalized: bool,
    ) -> StorageResult<bool> {
        self.validate_points(points)?;
        let mut state = self.ingest_state();
        if state.wal.is_some() {
            return Err(StorageError::corrupt(
                "apply_replicated rejected: this engine has its own attached WAL \
                 (it is a leader, not a replica)",
            ));
        }
        if generation == state.wal_generation {
            if ordinal < state.wal_applied {
                return Ok(false);
            }
            if ordinal > state.wal_applied {
                return Err(StorageError::corrupt(format!(
                    "replication gap: shipped record {generation}/{ordinal} but only \
                     {} records of generation {} are applied",
                    state.wal_applied, state.wal_generation
                )));
            }
        } else {
            if ordinal != 0 {
                return Err(StorageError::corrupt(format!(
                    "replication gap: shipped generation {generation} starts at \
                     record {ordinal}, expected 0"
                )));
            }
            state.wal_generation = generation;
            state.wal_applied = 0;
        }
        self.apply_batch(points, &mut state, prenormalized, None)?;
        state.wal_applied = ordinal + 1;
        Ok(true)
    }

    /// Advances a replica's WAL bookkeeping across a leader rotation that
    /// has shipped no records of the new generation yet (the leader
    /// checkpointed; its fresh log is empty). Without this, a fully caught
    /// up replica would report the retired generation until the next
    /// record arrives. No-op when the replica already reached (or passed)
    /// `generation`; rejected on a leader like
    /// [`ReachabilityEngine::apply_replicated`].
    pub(crate) fn observe_replicated_rotation(&self, generation: u64) -> StorageResult<()> {
        let mut state = self.ingest_state();
        if state.wal.is_some() {
            return Err(StorageError::corrupt(
                "cannot observe a replicated rotation on an engine with an attached WAL \
                 (it is a leader, not a replica)",
            ));
        }
        if generation > state.wal_generation {
            state.wal_generation = generation;
            state.wal_applied = 0;
        }
        Ok(())
    }

    /// Rejects batches this engine cannot apply — shared by live ingest
    /// (before anything is logged) and WAL replay (before anything is
    /// indexed).
    fn validate_points(&self, points: &[TrajPoint]) -> StorageResult<()> {
        for (i, p) in points.iter().enumerate() {
            if p.segment.index() >= self.network.num_segments() {
                return Err(StorageError::corrupt(format!(
                    "ingest batch rejected: point #{i} names segment {} but the \
                     network has {} segments",
                    p.segment,
                    self.network.num_segments()
                )));
            }
            if p.date == u16::MAX {
                return Err(StorageError::corrupt(format!(
                    "ingest batch rejected: point #{i} uses reserved date {}",
                    u16::MAX
                )));
            }
        }
        Ok(())
    }

    /// Applies one decoded batch to the index structures. Shared by live
    /// ingest and WAL replay so both paths are bit-identical.
    ///
    /// `prenormalized` batches (owner-routed by a sharded router's
    /// statistics leader, logged under the `0x02` WAL tag) skip
    /// normalization, speed-pair derivation and last-visit staging: the
    /// leader already did all of that over the full batch — re-deriving
    /// speed pairs from an owner-filtered sub-stream would corrupt the
    /// statistics (a dropped re-entry decision depends on visits this
    /// shard does not own). They fold into the postings only. Their touch
    /// reports local posting pairs alone — the statistics leader's raw
    /// batch reports the speed slots and the day raise exactly once.
    ///
    /// `capture_normalized`, when set, receives the full-batch normalized
    /// point sequence (before any shard-ownership filter).
    fn apply_batch(
        &self,
        points: &[TrajPoint],
        state: &mut IngestState,
        prenormalized: bool,
        capture_normalized: Option<&mut Vec<TrajPoint>>,
    ) -> StorageResult<(usize, usize)> {
        if prenormalized {
            debug_assert!(
                capture_normalized.is_none(),
                "capturing a pre-normalized batch is meaningless: it IS the capture"
            );
            if points.is_empty() {
                return Ok((0, 0));
            }
            let mut owned: Vec<TrajPoint> = points.to_vec();
            // Defense in depth: the router already sent owned points only,
            // but a replayed log may meet a re-partitioned engine.
            if let Some((map, shard_id)) = self.shard.get() {
                owned.retain(|p| map.shard_of(p.segment) == *shard_id);
            }
            let posting_pairs = self.st_index.apply_points(&owned)?;
            let lists_touched = posting_pairs.len();
            let max_date = points.iter().map(|p| p.date).max().unwrap_or(0);
            self.st_index.raise_num_days(max_date + 1);
            self.notify_touch(&IngestTouch {
                posting_pairs,
                speed_slots: Vec::new(),
                num_days_raised: false,
            });
            return Ok((lists_touched, 0));
        }

        // Normalize exactly like `MatchedTrajectory::push`: a point
        // re-entering the segment its trajectory is already on is dropped,
        // so a raw feed and the batch pipeline index the same visits.
        let mut normalized: Vec<TrajPoint> = Vec::with_capacity(points.len());
        let mut pairs: Vec<(SegmentId, u32, u32)> = Vec::new();
        let mut staged_last: std::collections::HashMap<(u32, u16), LastVisit> =
            std::collections::HashMap::new();
        let mut max_date = 0u16;
        for p in points {
            let key = (p.traj_id, p.date);
            let prev = staged_last.get(&key).or_else(|| state.last_visit.get(&key));
            if let Some(prev) = prev {
                if prev.segment == p.segment.0 {
                    continue;
                }
                pairs.push((SegmentId(prev.segment), prev.enter_time_s, p.enter_time_s));
            }
            staged_last.insert(
                key,
                LastVisit {
                    segment: p.segment.0,
                    enter_time_s: p.enter_time_s,
                },
            );
            max_date = max_date.max(p.date);
            normalized.push(*p);
        }
        if let Some(capture) = capture_normalized {
            capture.extend_from_slice(&normalized);
        }
        if normalized.is_empty() {
            return Ok((0, 0));
        }

        // A shard engine indexes only its owned postings. The filter runs
        // AFTER normalization so the dropped-re-entry decisions, the speed
        // pairs, the last-visit table and the day count are computed over
        // the full batch — identical on every shard and on a single engine.
        if let Some((map, shard_id)) = self.shard.get() {
            normalized.retain(|p| map.shard_of(p.segment) == *shard_id);
        }

        let posting_pairs = self.st_index.apply_points(&normalized)?;
        let lists_touched = posting_pairs.len();
        // Only commit the derived state once the posting writes stuck: a
        // retried batch after a delta write fault recomputes the same
        // pairs (the merge side is idempotent, the speed side must not be
        // double-fed).
        let speed_observations = self.con_index.apply_speed_pairs(&self.network, &pairs);
        state.last_visit.extend(staged_last);
        let num_days_before = self.st_index.num_days();
        self.st_index.raise_num_days(max_date + 1);

        // Invalidation signal for layered result caches: the posting pairs
        // the delta directory now overrides, the day slots whose speed
        // statistics moved (conservatively every pair's slot — whether an
        // observation was plausible is the statistics layer's business),
        // and whether the probability denominator rose.
        let slots_per_day = streach_traj::SECONDS_PER_DAY.div_ceil(self.config.slot_s);
        let mut speed_slots: Vec<u32> = pairs
            .iter()
            .map(|&(_, enter_time_s, _)| slot_of(enter_time_s, self.config.slot_s) % slots_per_day)
            .collect();
        speed_slots.sort_unstable();
        speed_slots.dedup();
        self.notify_touch(&IngestTouch {
            posting_pairs,
            speed_slots,
            num_days_raised: max_date + 1 > num_days_before,
        });
        Ok((lists_touched, speed_observations))
    }

    /// Folds the ingested delta tail into a new sealed ST-Index base (see
    /// [`StIndex::compact`]): queries afterwards are bit-identical, the
    /// delta heap is empty, and the next snapshot save re-exports the (new)
    /// base page file. Statistics-wise the result matches a from-scratch
    /// build on the combined data. Returns what was folded.
    ///
    /// Safe to call on a **serving** engine: the new base is built off to
    /// the side and published with one atomic pointer swap, so concurrent
    /// queries never block and never observe a half-compacted index —
    /// readers in flight simply finish on the old base. Ingest and
    /// snapshot saves are excluded for the duration (they share the ingest
    /// lock); on error the old base keeps serving and the call is
    /// retryable. The background [`crate::maintenance::MaintenanceController`]
    /// invokes this off the caller's thread.
    pub fn compact(&self) -> StorageResult<DeltaStats> {
        let _ingest = self.ingest_state();
        let folded = self.st_index.compact()?;
        if folded.delta_lists > 0 {
            *self.base_pages.lock() = None;
        }
        Ok(folded)
    }

    /// Pre-builds the Con-Index connection tables a query (or a whole sweep
    /// of queries) will need, so that query timings reflect pure query
    /// processing — the paper builds its indexes offline.
    pub fn warm_con_index(&self, start_time_s: u32, duration_s: u32) {
        let slot_s = self.config.slot_s;
        let k = num_hops(duration_s, slot_s);
        let slots: Vec<u32> = (0..k)
            .map(|step| slot_of(start_time_s.saturating_add(step * slot_s), slot_s))
            .collect();
        self.con_index.build_slots(&slots);
    }

    /// Maps a query location to its start road segment via the ST-Index
    /// spatial component.
    pub fn locate(&self, location: &streach_geo::GeoPoint) -> Option<SegmentId> {
        self.st_index.locate_segment(location)
    }

    /// Maps a query location to its start road segment, returning a typed
    /// error instead of `None` when the location matches nothing — either
    /// because the network is empty or because the nearest segment is
    /// farther than [`ReachabilityEngine::MAX_MATCH_DISTANCE_M`] (a request
    /// from outside the serviced area must not silently snap to a boundary
    /// segment).
    pub fn try_locate(&self, location: &streach_geo::GeoPoint) -> Result<SegmentId, QueryError> {
        self.locate_indexed(location, 0)
    }

    /// Maximum distance (meters) between a query location and its matched
    /// road segment before the location counts as off-network.
    pub const MAX_MATCH_DISTANCE_M: f64 = 5_000.0;

    fn locate_indexed(
        &self,
        location: &streach_geo::GeoPoint,
        index: usize,
    ) -> Result<SegmentId, QueryError> {
        if !location.is_finite() {
            return Err(QueryError::InvalidQuery(
                "query location must be finite".into(),
            ));
        }
        match self.network.nearest_segment(location) {
            Some((segment, distance_m)) if distance_m <= Self::MAX_MATCH_DISTANCE_M => Ok(segment),
            _ => Err(QueryError::LocationOffNetwork {
                index,
                location: *location,
            }),
        }
    }

    /// Answers a single-location ST reachability query.
    ///
    /// # Panics
    /// Panics if the query is invalid (see [`SQuery::validate`]), if the
    /// location cannot be matched to a road segment, or if a posting read
    /// hits a disk fault. A serving process should use
    /// [`ReachabilityEngine::try_s_query`] instead.
    pub fn s_query(&self, query: &SQuery, algorithm: Algorithm) -> QueryOutcome {
        self.try_s_query(query, algorithm).expect("invalid s-query")
    }

    /// Answers a single-location ST reachability query, reporting malformed
    /// queries, off-network locations **and storage faults** as a
    /// [`QueryError`] instead of aborting the process. A
    /// [`QueryError::Storage`] leaves the engine fully usable — the next
    /// fault-free query is served normally.
    pub fn try_s_query(
        &self,
        query: &SQuery,
        algorithm: Algorithm,
    ) -> Result<QueryOutcome, QueryError> {
        query.validate()?;
        let start_segment = self.try_locate(&query.location)?;

        let io_before = self.st_index.io_stats().snapshot();
        let t0 = Instant::now();
        let (region, verified, visited, max_b, min_b, bounding_time, verify_time) = match algorithm
        {
            Algorithm::ExhaustiveSearch => {
                let out = exhaustive_search(&self.network, &self.st_index, query, start_segment)?;
                (
                    out.region,
                    out.verifications,
                    out.visited,
                    0,
                    0,
                    out.expansion_time,
                    out.verify_time,
                )
            }
            Algorithm::SqmbTbs => {
                let tb = Instant::now();
                let bounds = sqmb(
                    &self.con_index,
                    self.network.num_segments(),
                    start_segment,
                    query.start_time_s,
                    query.duration_s,
                );
                let bounding_time = tb.elapsed();
                // verify_time covers core construction (the start segment's
                // posting reads) plus the annulus sweep, mirroring the
                // setup_time + verify_time sum reported for m-queries.
                let tv = Instant::now();
                let core = VerifierCore::new(
                    &self.st_index,
                    start_segment,
                    query.start_time_s,
                    query.duration_s,
                )?;
                let outcome = trace_back_search(&self.network, &core, &bounds, query.prob)?;
                let verify_time = tv.elapsed();
                (
                    outcome.region,
                    outcome.verifications,
                    outcome.visited,
                    bounds.max_region.len(),
                    bounds.min_region.len(),
                    bounding_time,
                    verify_time,
                )
            }
        };
        let wall_time = t0.elapsed();
        let io_after = self.st_index.io_stats().snapshot();

        Ok(QueryOutcome {
            region,
            stats: QueryStats {
                wall_time,
                bounding_time,
                verify_time,
                io: io_after.delta_since(&io_before),
                segments_verified: verified,
                max_bounding_size: max_b,
                min_bounding_size: min_b,
                segments_visited: visited,
            },
        })
    }

    /// Answers a batch of SQMB+TBS s-queries with **one shared MQMB
    /// bounding pass** per (origin segment, slot window) group — the
    /// cross-user coalescing primitive behind [`crate::serve::QueryServer`].
    /// Results are in input order and bit-identical to calling
    /// [`ReachabilityEngine::try_s_query`] with [`Algorithm::SqmbTbs`] per
    /// query; failures surface as that caller's [`QueryError`].
    pub fn try_s_query_coalesced(&self, queries: &[SQuery]) -> Vec<crate::serve::CoalescedAnswer> {
        crate::serve::answer_coalesced(
            &self.network,
            &self.con_index,
            &self.st_index,
            &|location| self.try_locate(location),
            queries,
        )
    }

    /// Answers a multi-location ST reachability query.
    ///
    /// With [`MQueryAlgorithm::RepeatedSQuery`] every location is answered as
    /// an independent SQMB+TBS s-query and the regions are unioned (the
    /// baseline of Section 4.3); with [`MQueryAlgorithm::MqmbTbs`] the
    /// unified MQMB bounding region is verified once.
    pub fn m_query(&self, query: &MQuery, algorithm: MQueryAlgorithm) -> QueryOutcome {
        self.try_m_query(query, algorithm).expect("invalid m-query")
    }

    /// Answers a multi-location ST reachability query, reporting malformed
    /// queries, off-network locations and storage faults as a
    /// [`QueryError`] instead of aborting the process.
    pub fn try_m_query(
        &self,
        query: &MQuery,
        algorithm: MQueryAlgorithm,
    ) -> Result<QueryOutcome, QueryError> {
        query.validate()?;
        match algorithm {
            MQueryAlgorithm::RepeatedSQuery => {
                let mut region = ReachableRegion::empty();
                let mut stats = QueryStats::default();
                for i in 0..query.locations.len() {
                    let sub = query.sub_query(i);
                    let outcome = self.try_s_query(&sub, Algorithm::SqmbTbs).map_err(|e| {
                        // Attribute an off-network location to its m-query index.
                        match e {
                            QueryError::LocationOffNetwork { location, .. } => {
                                QueryError::LocationOffNetwork { index: i, location }
                            }
                            other => other,
                        }
                    })?;
                    region = region.union(&self.network, &outcome.region);
                    stats = stats.merge(&outcome.stats);
                }
                Ok(QueryOutcome { region, stats })
            }
            MQueryAlgorithm::MqmbTbs => {
                let starts: Vec<SegmentId> = query
                    .locations
                    .iter()
                    .enumerate()
                    .map(|(i, p)| self.locate_indexed(p, i))
                    .collect::<Result<_, _>>()?;
                let io_before = self.st_index.io_stats().snapshot();
                let t0 = Instant::now();
                let bounds = mqmb(
                    &self.con_index,
                    &self.network,
                    &starts,
                    &query.locations,
                    query.start_time_s,
                    query.duration_s,
                );
                let bounding_time = t0.elapsed();
                let outcome = mqmb_trace_back(
                    &self.network,
                    &self.st_index,
                    &bounds,
                    &starts,
                    query.start_time_s,
                    query.duration_s,
                    query.prob,
                )?;
                let wall_time = t0.elapsed();
                let io_after = self.st_index.io_stats().snapshot();
                Ok(QueryOutcome {
                    region: outcome.region,
                    stats: QueryStats {
                        wall_time,
                        bounding_time,
                        verify_time: outcome.setup_time + outcome.verify_time,
                        io: io_after.delta_since(&io_before),
                        segments_verified: outcome.verifications,
                        max_bounding_size: bounds.max_region.len(),
                        min_bounding_size: bounds.min_region.len(),
                        segments_visited: outcome.visited,
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use std::sync::Arc;
    use streach_geo::GeoPoint;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::{FleetConfig, TrajectoryDataset};

    fn engine() -> ReachabilityEngine {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(&network, FleetConfig::tiny());
        EngineBuilder::new(network, &dataset)
            .index_config(IndexConfig {
                read_latency_us: 0,
                ..Default::default()
            })
            .build()
    }

    #[test]
    fn try_s_query_reports_invalid_parameters() {
        let e = engine();
        let q = SQuery {
            location: e.network().bounds().center(),
            start_time_s: 9 * 3600,
            duration_s: 0,
            prob: 0.2,
        };
        match e.try_s_query(&q, Algorithm::SqmbTbs) {
            Err(QueryError::InvalidQuery(reason)) => {
                assert!(reason.contains("duration"), "{reason}")
            }
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
    }

    #[test]
    fn try_locate_rejects_non_finite_locations() {
        let e = engine();
        let err = e.try_locate(&GeoPoint::new(f64::NAN, 0.0)).unwrap_err();
        assert!(matches!(err, QueryError::InvalidQuery(_)));
        assert!(e.try_locate(&e.network().bounds().center()).is_ok());
    }

    #[test]
    fn try_locate_rejects_far_off_network_locations() {
        let e = engine();
        // Finite, but on the other side of the planet — snapping it to a
        // boundary segment would serve a nonsense region.
        let far = GeoPoint::new(0.0, 0.0);
        match e.try_locate(&far) {
            Err(QueryError::LocationOffNetwork { index: 0, location }) => {
                assert_eq!(location, far)
            }
            other => panic!("expected LocationOffNetwork, got {other:?}"),
        }
        // The Option-returning nearest lookup still matches (uncapped).
        assert!(e.locate(&far).is_some());
    }

    #[test]
    fn try_m_query_attributes_the_offending_location() {
        let e = engine();
        let far = GeoPoint::new(0.0, 0.0);
        let m = MQuery {
            locations: vec![e.network().bounds().center(), far],
            start_time_s: 9 * 3600,
            duration_s: 600,
            prob: 0.2,
        };
        for algo in [MQueryAlgorithm::MqmbTbs, MQueryAlgorithm::RepeatedSQuery] {
            match e.try_m_query(&m, algo).unwrap_err() {
                QueryError::LocationOffNetwork { index, location } => {
                    assert_eq!(index, 1, "{algo:?} must blame location #1");
                    assert_eq!(location, far);
                }
                other => panic!("{algo:?}: expected LocationOffNetwork, got {other}"),
            }
        }
        // NaN locations are still rejected as invalid before any matching.
        let nan = MQuery {
            locations: vec![e.network().bounds().center(), GeoPoint::new(f64::NAN, 1.0)],
            ..m
        };
        let err = e.try_m_query(&nan, MQueryAlgorithm::MqmbTbs).unwrap_err();
        assert!(matches!(err, QueryError::InvalidQuery(_)), "{err}");
    }

    #[test]
    fn try_s_query_matches_panicking_wrapper() {
        let e = engine();
        let q = SQuery {
            location: e.network().bounds().center(),
            start_time_s: 9 * 3600,
            duration_s: 600,
            prob: 0.2,
        };
        let a = e.try_s_query(&q, Algorithm::SqmbTbs).unwrap();
        let b = e.s_query(&q, Algorithm::SqmbTbs);
        assert_eq!(a.region.segments, b.region.segments);
    }

    #[test]
    fn query_error_displays() {
        let e1 = QueryError::InvalidQuery("bad".into());
        assert!(e1.to_string().contains("bad"));
        let e2 = QueryError::LocationOffNetwork {
            index: 2,
            location: GeoPoint::new(114.0, 22.5),
        };
        assert!(e2.to_string().contains("#2"));
    }
}
