//! The high-level reachability query engine.

use std::sync::Arc;
use std::time::Instant;

use streach_roadnet::{RoadNetwork, SegmentId};

use crate::con_index::ConIndex;
use crate::config::IndexConfig;
use crate::query::es::exhaustive_search;
use crate::query::mqmb::{mqmb, mqmb_trace_back};
use crate::query::sqmb::{num_hops, sqmb};
use crate::query::tbs::trace_back_search;
use crate::query::verifier::VerifierCore;
use crate::query::{Algorithm, MQuery, MQueryAlgorithm, QueryError, QueryOutcome, SQuery};
use crate::region::ReachableRegion;
use crate::st_index::StIndex;
use crate::stats::QueryStats;
use crate::time::slot_of;

/// The spatio-temporal reachability query engine: the ST-Index, the
/// Con-Index and the query processing algorithms behind one façade.
///
/// Use [`crate::builder::EngineBuilder`] to construct one from a road network
/// and a trajectory dataset.
pub struct ReachabilityEngine {
    network: Arc<RoadNetwork>,
    st_index: StIndex,
    con_index: ConIndex,
    config: IndexConfig,
}

impl ReachabilityEngine {
    pub(crate) fn new(
        network: Arc<RoadNetwork>,
        st_index: StIndex,
        con_index: ConIndex,
        config: IndexConfig,
    ) -> Self {
        Self {
            network,
            st_index,
            con_index,
            config,
        }
    }

    /// The road network.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.network
    }

    /// The ST-Index.
    pub fn st_index(&self) -> &StIndex {
        &self.st_index
    }

    /// The Con-Index.
    pub fn con_index(&self) -> &ConIndex {
        &self.con_index
    }

    /// The index configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Persists the engine into a snapshot directory (see
    /// [`crate::snapshot`]): the ST-Index posting heap as a real page file
    /// plus a checksummed container holding the temporal directory, the
    /// speed statistics, the cached Con-Index tables and the configuration.
    /// Both files are fsynced before this returns.
    pub fn save_snapshot<P: AsRef<std::path::Path>>(
        &self,
        dir: P,
    ) -> streach_storage::StorageResult<()> {
        crate::snapshot::save(self, dir.as_ref())
    }

    /// Reopens an engine from a snapshot directory **without touching the
    /// trajectory dataset**. The road network is a static input and is
    /// validated against the fingerprint stored in the snapshot; posting
    /// reads on the reopened engine are genuine page I/O against the
    /// snapshot's page file.
    pub fn open_snapshot<P: AsRef<std::path::Path>>(
        dir: P,
        network: Arc<RoadNetwork>,
    ) -> streach_storage::StorageResult<Self> {
        Self::open_snapshot_with_store(dir, network, |store| store)
    }

    /// Like [`ReachabilityEngine::open_snapshot`], but lets the caller wrap
    /// the snapshot's page store before the engine takes ownership — the
    /// hook behind fault injection
    /// ([`streach_storage::FaultInjectingPageStore`] in
    /// `tests/fault_injection.rs`), and useful for any instrumentation
    /// wrapper (metrics, tracing) that should sit under the buffer pool.
    /// The wrapper sees the already-validated [`streach_storage::FilePageStore`];
    /// whatever it returns serves every posting read of the engine's life.
    pub fn open_snapshot_with_store<P, F>(
        dir: P,
        network: Arc<RoadNetwork>,
        wrap: F,
    ) -> streach_storage::StorageResult<Self>
    where
        P: AsRef<std::path::Path>,
        F: FnOnce(Box<dyn streach_storage::PageStore>) -> Box<dyn streach_storage::PageStore>,
    {
        crate::snapshot::open(dir.as_ref(), network, wrap)
    }

    /// Pre-builds the Con-Index connection tables a query (or a whole sweep
    /// of queries) will need, so that query timings reflect pure query
    /// processing — the paper builds its indexes offline.
    pub fn warm_con_index(&self, start_time_s: u32, duration_s: u32) {
        let slot_s = self.config.slot_s;
        let k = num_hops(duration_s, slot_s);
        let slots: Vec<u32> = (0..k)
            .map(|step| slot_of(start_time_s.saturating_add(step * slot_s), slot_s))
            .collect();
        self.con_index.build_slots(&slots);
    }

    /// Maps a query location to its start road segment via the ST-Index
    /// spatial component.
    pub fn locate(&self, location: &streach_geo::GeoPoint) -> Option<SegmentId> {
        self.st_index.locate_segment(location)
    }

    /// Maps a query location to its start road segment, returning a typed
    /// error instead of `None` when the location matches nothing — either
    /// because the network is empty or because the nearest segment is
    /// farther than [`ReachabilityEngine::MAX_MATCH_DISTANCE_M`] (a request
    /// from outside the serviced area must not silently snap to a boundary
    /// segment).
    pub fn try_locate(&self, location: &streach_geo::GeoPoint) -> Result<SegmentId, QueryError> {
        self.locate_indexed(location, 0)
    }

    /// Maximum distance (meters) between a query location and its matched
    /// road segment before the location counts as off-network.
    pub const MAX_MATCH_DISTANCE_M: f64 = 5_000.0;

    fn locate_indexed(
        &self,
        location: &streach_geo::GeoPoint,
        index: usize,
    ) -> Result<SegmentId, QueryError> {
        if !location.is_finite() {
            return Err(QueryError::InvalidQuery(
                "query location must be finite".into(),
            ));
        }
        match self.network.nearest_segment(location) {
            Some((segment, distance_m)) if distance_m <= Self::MAX_MATCH_DISTANCE_M => Ok(segment),
            _ => Err(QueryError::LocationOffNetwork {
                index,
                location: *location,
            }),
        }
    }

    /// Answers a single-location ST reachability query.
    ///
    /// # Panics
    /// Panics if the query is invalid (see [`SQuery::validate`]), if the
    /// location cannot be matched to a road segment, or if a posting read
    /// hits a disk fault. A serving process should use
    /// [`ReachabilityEngine::try_s_query`] instead.
    pub fn s_query(&self, query: &SQuery, algorithm: Algorithm) -> QueryOutcome {
        self.try_s_query(query, algorithm).expect("invalid s-query")
    }

    /// Answers a single-location ST reachability query, reporting malformed
    /// queries, off-network locations **and storage faults** as a
    /// [`QueryError`] instead of aborting the process. A
    /// [`QueryError::Storage`] leaves the engine fully usable — the next
    /// fault-free query is served normally.
    pub fn try_s_query(
        &self,
        query: &SQuery,
        algorithm: Algorithm,
    ) -> Result<QueryOutcome, QueryError> {
        query.validate()?;
        let start_segment = self.try_locate(&query.location)?;

        let io_before = self.st_index.io_stats().snapshot();
        let t0 = Instant::now();
        let (region, verified, visited, max_b, min_b, bounding_time, verify_time) = match algorithm
        {
            Algorithm::ExhaustiveSearch => {
                let out = exhaustive_search(&self.network, &self.st_index, query, start_segment)?;
                (
                    out.region,
                    out.verifications,
                    out.visited,
                    0,
                    0,
                    out.expansion_time,
                    out.verify_time,
                )
            }
            Algorithm::SqmbTbs => {
                let tb = Instant::now();
                let bounds = sqmb(
                    &self.con_index,
                    self.network.num_segments(),
                    start_segment,
                    query.start_time_s,
                    query.duration_s,
                );
                let bounding_time = tb.elapsed();
                // verify_time covers core construction (the start segment's
                // posting reads) plus the annulus sweep, mirroring the
                // setup_time + verify_time sum reported for m-queries.
                let tv = Instant::now();
                let core = VerifierCore::new(
                    &self.st_index,
                    start_segment,
                    query.start_time_s,
                    query.duration_s,
                )?;
                let outcome = trace_back_search(&self.network, &core, &bounds, query.prob)?;
                let verify_time = tv.elapsed();
                (
                    outcome.region,
                    outcome.verifications,
                    outcome.visited,
                    bounds.max_region.len(),
                    bounds.min_region.len(),
                    bounding_time,
                    verify_time,
                )
            }
        };
        let wall_time = t0.elapsed();
        let io_after = self.st_index.io_stats().snapshot();

        Ok(QueryOutcome {
            region,
            stats: QueryStats {
                wall_time,
                bounding_time,
                verify_time,
                io: io_after.delta_since(&io_before),
                segments_verified: verified,
                max_bounding_size: max_b,
                min_bounding_size: min_b,
                segments_visited: visited,
            },
        })
    }

    /// Answers a multi-location ST reachability query.
    ///
    /// With [`MQueryAlgorithm::RepeatedSQuery`] every location is answered as
    /// an independent SQMB+TBS s-query and the regions are unioned (the
    /// baseline of Section 4.3); with [`MQueryAlgorithm::MqmbTbs`] the
    /// unified MQMB bounding region is verified once.
    pub fn m_query(&self, query: &MQuery, algorithm: MQueryAlgorithm) -> QueryOutcome {
        self.try_m_query(query, algorithm).expect("invalid m-query")
    }

    /// Answers a multi-location ST reachability query, reporting malformed
    /// queries, off-network locations and storage faults as a
    /// [`QueryError`] instead of aborting the process.
    pub fn try_m_query(
        &self,
        query: &MQuery,
        algorithm: MQueryAlgorithm,
    ) -> Result<QueryOutcome, QueryError> {
        query.validate()?;
        match algorithm {
            MQueryAlgorithm::RepeatedSQuery => {
                let mut region = ReachableRegion::empty();
                let mut stats = QueryStats::default();
                for i in 0..query.locations.len() {
                    let sub = query.sub_query(i);
                    let outcome = self.try_s_query(&sub, Algorithm::SqmbTbs).map_err(|e| {
                        // Attribute an off-network location to its m-query index.
                        match e {
                            QueryError::LocationOffNetwork { location, .. } => {
                                QueryError::LocationOffNetwork { index: i, location }
                            }
                            other => other,
                        }
                    })?;
                    region = region.union(&self.network, &outcome.region);
                    stats = stats.merge(&outcome.stats);
                }
                Ok(QueryOutcome { region, stats })
            }
            MQueryAlgorithm::MqmbTbs => {
                let starts: Vec<SegmentId> = query
                    .locations
                    .iter()
                    .enumerate()
                    .map(|(i, p)| self.locate_indexed(p, i))
                    .collect::<Result<_, _>>()?;
                let io_before = self.st_index.io_stats().snapshot();
                let t0 = Instant::now();
                let bounds = mqmb(
                    &self.con_index,
                    &self.network,
                    &starts,
                    &query.locations,
                    query.start_time_s,
                    query.duration_s,
                );
                let bounding_time = t0.elapsed();
                let outcome = mqmb_trace_back(
                    &self.network,
                    &self.st_index,
                    &bounds,
                    &starts,
                    query.start_time_s,
                    query.duration_s,
                    query.prob,
                )?;
                let wall_time = t0.elapsed();
                let io_after = self.st_index.io_stats().snapshot();
                Ok(QueryOutcome {
                    region: outcome.region,
                    stats: QueryStats {
                        wall_time,
                        bounding_time,
                        verify_time: outcome.setup_time + outcome.verify_time,
                        io: io_after.delta_since(&io_before),
                        segments_verified: outcome.verifications,
                        max_bounding_size: bounds.max_region.len(),
                        min_bounding_size: bounds.min_region.len(),
                        segments_visited: outcome.visited,
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use std::sync::Arc;
    use streach_geo::GeoPoint;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::{FleetConfig, TrajectoryDataset};

    fn engine() -> ReachabilityEngine {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(&network, FleetConfig::tiny());
        EngineBuilder::new(network, &dataset)
            .index_config(IndexConfig {
                read_latency_us: 0,
                ..Default::default()
            })
            .build()
    }

    #[test]
    fn try_s_query_reports_invalid_parameters() {
        let e = engine();
        let q = SQuery {
            location: e.network().bounds().center(),
            start_time_s: 9 * 3600,
            duration_s: 0,
            prob: 0.2,
        };
        match e.try_s_query(&q, Algorithm::SqmbTbs) {
            Err(QueryError::InvalidQuery(reason)) => {
                assert!(reason.contains("duration"), "{reason}")
            }
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
    }

    #[test]
    fn try_locate_rejects_non_finite_locations() {
        let e = engine();
        let err = e.try_locate(&GeoPoint::new(f64::NAN, 0.0)).unwrap_err();
        assert!(matches!(err, QueryError::InvalidQuery(_)));
        assert!(e.try_locate(&e.network().bounds().center()).is_ok());
    }

    #[test]
    fn try_locate_rejects_far_off_network_locations() {
        let e = engine();
        // Finite, but on the other side of the planet — snapping it to a
        // boundary segment would serve a nonsense region.
        let far = GeoPoint::new(0.0, 0.0);
        match e.try_locate(&far) {
            Err(QueryError::LocationOffNetwork { index: 0, location }) => {
                assert_eq!(location, far)
            }
            other => panic!("expected LocationOffNetwork, got {other:?}"),
        }
        // The Option-returning nearest lookup still matches (uncapped).
        assert!(e.locate(&far).is_some());
    }

    #[test]
    fn try_m_query_attributes_the_offending_location() {
        let e = engine();
        let far = GeoPoint::new(0.0, 0.0);
        let m = MQuery {
            locations: vec![e.network().bounds().center(), far],
            start_time_s: 9 * 3600,
            duration_s: 600,
            prob: 0.2,
        };
        for algo in [MQueryAlgorithm::MqmbTbs, MQueryAlgorithm::RepeatedSQuery] {
            match e.try_m_query(&m, algo).unwrap_err() {
                QueryError::LocationOffNetwork { index, location } => {
                    assert_eq!(index, 1, "{algo:?} must blame location #1");
                    assert_eq!(location, far);
                }
                other => panic!("{algo:?}: expected LocationOffNetwork, got {other}"),
            }
        }
        // NaN locations are still rejected as invalid before any matching.
        let nan = MQuery {
            locations: vec![e.network().bounds().center(), GeoPoint::new(f64::NAN, 1.0)],
            ..m
        };
        let err = e.try_m_query(&nan, MQueryAlgorithm::MqmbTbs).unwrap_err();
        assert!(matches!(err, QueryError::InvalidQuery(_)), "{err}");
    }

    #[test]
    fn try_s_query_matches_panicking_wrapper() {
        let e = engine();
        let q = SQuery {
            location: e.network().bounds().center(),
            start_time_s: 9 * 3600,
            duration_s: 600,
            prob: 0.2,
        };
        let a = e.try_s_query(&q, Algorithm::SqmbTbs).unwrap();
        let b = e.s_query(&q, Algorithm::SqmbTbs);
        assert_eq!(a.region.segments, b.region.segments);
    }

    #[test]
    fn query_error_displays() {
        let e1 = QueryError::InvalidQuery("bad".into());
        assert!(e1.to_string().contains("bad"));
        let e2 = QueryError::LocationOffNetwork {
            index: 2,
            location: GeoPoint::new(114.0, 22.5),
        };
        assert!(e2.to_string().contains("#2"));
    }
}
