//! The high-level reachability query engine.

use std::sync::Arc;
use std::time::Instant;

use streach_roadnet::{RoadNetwork, SegmentId};

use crate::con_index::ConIndex;
use crate::config::IndexConfig;
use crate::query::es::exhaustive_search;
use crate::query::mqmb::{mqmb, mqmb_trace_back};
use crate::query::sqmb::{num_hops, sqmb};
use crate::query::tbs::trace_back_search;
use crate::query::verifier::VerifierCore;
use crate::query::{Algorithm, MQuery, MQueryAlgorithm, QueryOutcome, SQuery};
use crate::region::ReachableRegion;
use crate::st_index::StIndex;
use crate::stats::QueryStats;
use crate::time::slot_of;

/// The spatio-temporal reachability query engine: the ST-Index, the
/// Con-Index and the query processing algorithms behind one façade.
///
/// Use [`crate::builder::EngineBuilder`] to construct one from a road network
/// and a trajectory dataset.
pub struct ReachabilityEngine {
    network: Arc<RoadNetwork>,
    st_index: StIndex,
    con_index: ConIndex,
    config: IndexConfig,
}

impl ReachabilityEngine {
    pub(crate) fn new(
        network: Arc<RoadNetwork>,
        st_index: StIndex,
        con_index: ConIndex,
        config: IndexConfig,
    ) -> Self {
        Self {
            network,
            st_index,
            con_index,
            config,
        }
    }

    /// The road network.
    pub fn network(&self) -> &Arc<RoadNetwork> {
        &self.network
    }

    /// The ST-Index.
    pub fn st_index(&self) -> &StIndex {
        &self.st_index
    }

    /// The Con-Index.
    pub fn con_index(&self) -> &ConIndex {
        &self.con_index
    }

    /// The index configuration.
    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// Pre-builds the Con-Index connection tables a query (or a whole sweep
    /// of queries) will need, so that query timings reflect pure query
    /// processing — the paper builds its indexes offline.
    pub fn warm_con_index(&self, start_time_s: u32, duration_s: u32) {
        let slot_s = self.config.slot_s;
        let k = num_hops(duration_s, slot_s);
        let slots: Vec<u32> = (0..k)
            .map(|step| slot_of(start_time_s.saturating_add(step * slot_s), slot_s))
            .collect();
        self.con_index.build_slots(&slots);
    }

    /// Maps a query location to its start road segment via the ST-Index
    /// spatial component.
    pub fn locate(&self, location: &streach_geo::GeoPoint) -> Option<SegmentId> {
        self.st_index.locate_segment(location)
    }

    /// Answers a single-location ST reachability query.
    ///
    /// # Panics
    /// Panics if the query is invalid (see [`SQuery::validate`]) or if the
    /// location cannot be matched to a road segment.
    pub fn s_query(&self, query: &SQuery, algorithm: Algorithm) -> QueryOutcome {
        query.validate().expect("invalid s-query");
        let start_segment = self
            .locate(&query.location)
            .expect("query location cannot be matched to the road network");

        let io_before = self.st_index.io_stats().snapshot();
        let t0 = Instant::now();
        let (region, verified, visited, max_b, min_b, bounding_time, verify_time) = match algorithm
        {
            Algorithm::ExhaustiveSearch => {
                let out = exhaustive_search(&self.network, &self.st_index, query, start_segment);
                (
                    out.region,
                    out.verifications,
                    out.visited,
                    0,
                    0,
                    out.expansion_time,
                    out.verify_time,
                )
            }
            Algorithm::SqmbTbs => {
                let tb = Instant::now();
                let bounds = sqmb(
                    &self.con_index,
                    self.network.num_segments(),
                    start_segment,
                    query.start_time_s,
                    query.duration_s,
                );
                let bounding_time = tb.elapsed();
                // verify_time covers core construction (the start segment's
                // posting reads) plus the annulus sweep, mirroring the
                // setup_time + verify_time sum reported for m-queries.
                let tv = Instant::now();
                let core = VerifierCore::new(
                    &self.st_index,
                    start_segment,
                    query.start_time_s,
                    query.duration_s,
                );
                let outcome = trace_back_search(&self.network, &core, &bounds, query.prob);
                let verify_time = tv.elapsed();
                (
                    outcome.region,
                    outcome.verifications,
                    outcome.visited,
                    bounds.max_region.len(),
                    bounds.min_region.len(),
                    bounding_time,
                    verify_time,
                )
            }
        };
        let wall_time = t0.elapsed();
        let io_after = self.st_index.io_stats().snapshot();

        QueryOutcome {
            region,
            stats: QueryStats {
                wall_time,
                bounding_time,
                verify_time,
                io: io_after.delta_since(&io_before),
                segments_verified: verified,
                max_bounding_size: max_b,
                min_bounding_size: min_b,
                segments_visited: visited,
            },
        }
    }

    /// Answers a multi-location ST reachability query.
    ///
    /// With [`MQueryAlgorithm::RepeatedSQuery`] every location is answered as
    /// an independent SQMB+TBS s-query and the regions are unioned (the
    /// baseline of Section 4.3); with [`MQueryAlgorithm::MqmbTbs`] the
    /// unified MQMB bounding region is verified once.
    pub fn m_query(&self, query: &MQuery, algorithm: MQueryAlgorithm) -> QueryOutcome {
        query.validate().expect("invalid m-query");
        match algorithm {
            MQueryAlgorithm::RepeatedSQuery => {
                let mut region = ReachableRegion::empty();
                let mut stats = QueryStats::default();
                for i in 0..query.locations.len() {
                    let sub = query.sub_query(i);
                    let outcome = self.s_query(&sub, Algorithm::SqmbTbs);
                    region = region.union(&self.network, &outcome.region);
                    stats = stats.merge(&outcome.stats);
                }
                QueryOutcome { region, stats }
            }
            MQueryAlgorithm::MqmbTbs => {
                let starts: Vec<SegmentId> = query
                    .locations
                    .iter()
                    .map(|p| {
                        self.locate(p)
                            .expect("query location cannot be matched to the road network")
                    })
                    .collect();
                let io_before = self.st_index.io_stats().snapshot();
                let t0 = Instant::now();
                let bounds = mqmb(
                    &self.con_index,
                    &self.network,
                    &starts,
                    &query.locations,
                    query.start_time_s,
                    query.duration_s,
                );
                let bounding_time = t0.elapsed();
                let outcome = mqmb_trace_back(
                    &self.network,
                    &self.st_index,
                    &bounds,
                    &starts,
                    query.start_time_s,
                    query.duration_s,
                    query.prob,
                );
                let wall_time = t0.elapsed();
                let io_after = self.st_index.io_stats().snapshot();
                QueryOutcome {
                    region: outcome.region,
                    stats: QueryStats {
                        wall_time,
                        bounding_time,
                        verify_time: outcome.setup_time + outcome.verify_time,
                        io: io_after.delta_since(&io_before),
                        segments_verified: outcome.verifications,
                        max_bounding_size: bounds.max_region.len(),
                        min_bounding_size: bounds.min_region.len(),
                        segments_visited: outcome.visited,
                    },
                }
            }
        }
    }
}
