//! Index construction: from a road network and a trajectory dataset to a
//! ready-to-query [`ReachabilityEngine`].

use std::sync::Arc;

use streach_roadnet::{RoadNetwork, ShardMap};
use streach_traj::TrajectoryDataset;

use crate::con_index::ConIndex;
use crate::config::IndexConfig;
use crate::engine::ReachabilityEngine;
use crate::speed_stats::SpeedStats;
use crate::st_index::StIndex;

/// Builds the ST-Index and Con-Index over a dataset and wraps them in a
/// [`ReachabilityEngine`].
///
/// ```
/// # use streach_core::prelude::*;
/// # use streach_core::EngineBuilder;
/// # let city = SyntheticCity::generate(GeneratorConfig::small());
/// # let network = std::sync::Arc::new(city.network);
/// # let dataset = TrajectoryDataset::simulate(&network, FleetConfig::tiny());
/// let engine = EngineBuilder::new(network.clone(), &dataset).build();
/// assert!(engine.st_index().stats().num_time_lists > 0);
/// ```
pub struct EngineBuilder<'a> {
    network: Arc<RoadNetwork>,
    dataset: &'a TrajectoryDataset,
    config: IndexConfig,
    shard: Option<(Arc<ShardMap>, u16)>,
}

impl<'a> EngineBuilder<'a> {
    /// Starts a builder with the default [`IndexConfig`].
    pub fn new(network: Arc<RoadNetwork>, dataset: &'a TrajectoryDataset) -> Self {
        Self {
            network,
            dataset,
            config: IndexConfig::default(),
            shard: None,
        }
    }

    /// Overrides the index configuration.
    pub fn index_config(mut self, config: IndexConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides only the temporal granularity Δt (in seconds).
    pub fn slot_seconds(mut self, slot_s: u32) -> Self {
        self.config.slot_s = slot_s;
        self
    }

    /// Builds a **shard engine**: only postings of segments `map` assigns
    /// to `shard_id` are indexed, while the speed statistics, the day count
    /// and the last-visit table stay global ("postings sharded, statistics
    /// replicated"). The shard's bounding regions are therefore identical
    /// to a single engine's, and the union of all shards' postings equals
    /// the unsharded heap — the bit-equality the scatter-gather router
    /// relies on (see `crate::sharded`).
    pub fn shard(mut self, map: Arc<ShardMap>, shard_id: u16) -> Self {
        self.shard = Some((map, shard_id));
        self
    }

    /// Builds the indexes and the engine.
    pub fn build(self) -> ReachabilityEngine {
        let st_index = match &self.shard {
            Some((map, shard_id)) => {
                let (map, shard_id) = (Arc::clone(map), *shard_id);
                StIndex::build_filtered(
                    self.network.clone(),
                    self.dataset,
                    &self.config,
                    Some(&move |segment| map.shard_of(segment) == shard_id),
                )
            }
            None => StIndex::build(self.network.clone(), self.dataset, &self.config),
        };
        let speed_stats = Arc::new(SpeedStats::from_dataset(
            &self.network,
            self.dataset,
            self.config.slot_s,
        ));
        let con_index = ConIndex::new(self.network.clone(), speed_stats, &self.config);
        let engine = ReachabilityEngine::new(self.network, st_index, con_index, self.config);
        if let Some((map, shard_id)) = self.shard {
            engine.set_shard_ownership(map, shard_id);
        }
        // Seed the streaming-ingest last-visit table with each
        // trajectory's final visit, so points that *continue* a trajectory
        // already in the batch data derive the same boundary speed pair
        // (and same-segment dedup) a from-scratch build on the combined
        // data would — the ingest-equivalence guarantee holds for
        // mid-trajectory continuation, not just whole new fleet-days.
        engine.seed_last_visit(self.dataset);
        engine
    }

    /// Builds the indexes, persists them into `dir` as an engine snapshot
    /// (see [`crate::snapshot`]) and returns the freshly built engine. A
    /// later process reopens the same engine with
    /// [`ReachabilityEngine::open_snapshot`] — no trajectory data needed.
    pub fn save_snapshot<P: AsRef<std::path::Path>>(
        self,
        dir: P,
    ) -> streach_storage::StorageResult<ReachabilityEngine> {
        let engine = self.build();
        engine.save_snapshot(dir)?;
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};
    use streach_traj::FleetConfig;

    #[test]
    fn builder_applies_configuration() {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(&network, FleetConfig::tiny());
        let engine = EngineBuilder::new(network.clone(), &dataset)
            .slot_seconds(600)
            .index_config(IndexConfig {
                slot_s: 600,
                pool_pages: 16,
                read_latency_us: 0,
                ..Default::default()
            })
            .build();
        assert_eq!(engine.config().slot_s, 600);
        assert_eq!(engine.st_index().slot_s(), 600);
        assert_eq!(engine.con_index().slot_s(), 600);
        assert_eq!(engine.st_index().num_days(), dataset.num_days());
    }

    #[test]
    fn slot_seconds_shorthand() {
        let city = SyntheticCity::generate(GeneratorConfig::small());
        let network = Arc::new(city.network);
        let dataset = TrajectoryDataset::simulate(&network, FleetConfig::tiny());
        let engine = EngineBuilder::new(network, &dataset)
            .slot_seconds(120)
            .build();
        assert_eq!(engine.config().slot_s, 120);
    }
}
