//! Engine snapshots: persist a built [`ReachabilityEngine`] to disk and
//! reopen it without touching the trajectory dataset.
//!
//! The paper's indexes are built *offline* over a 194 GB dataset; rebuilding
//! them from raw trajectories on every process start would dwarf any query
//! cost. A snapshot captures everything the engine derives from the data:
//!
//! * the **ST-Index** — its temporal directory (slot → segment → blob
//!   handle) in the snapshot container and its posting heap as a raw page
//!   file reopened through [`streach_storage::FilePageStore`], so a cold
//!   start serves queries with *real* page I/O against real disk pages,
//! * the **Con-Index** — the historical [`SpeedStats`] the tables are
//!   derived from (tables for any slot can be rebuilt without the dataset)
//!   plus every currently cached connection table, so a warmed engine
//!   reopens warm,
//! * the [`IndexConfig`] the indexes were built with.
//!
//! The **road network is not serialized** — it is a static input (generated
//! deterministically or loaded from map data), not a derivative of the
//! trajectories. [`ReachabilityEngine::open_snapshot`] takes the network as
//! an argument and validates it against a structural fingerprint stored in
//! the snapshot, so opening a snapshot against the wrong city fails loudly
//! instead of answering garbage.
//!
//! # Files
//!
//! A snapshot directory holds:
//!
//! * `index.snap` — the [`streach_storage::snapshot`] container (versioned
//!   header, named sections, CRC-32 per section and over the file),
//! * `postings.pages` — the sealed-base ST-Index posting heap, one 4 KiB
//!   page per [`streach_storage::PAGE_SIZE`] slot, written with `fsync`,
//! * `deltas.pages` — the streaming-ingest delta posting heap (empty when
//!   nothing was ingested since the base was sealed).
//!
//! # Incremental snapshots
//!
//! Streaming ingest ([`crate::ingest`]) chains three *delta sections* onto
//! the container — `delta_pages_meta` (length + CRC of `deltas.pages`),
//! `delta_dir` (the (slot, segment) → handle override directory) and
//! `ingest_meta` (WAL generation, applied-record prefix, per-trajectory
//! last-visit table). [`ReachabilityEngine::save_incremental_snapshot`]
//! skips re-exporting `postings.pages` when the target directory already
//! holds the base heap the engine was opened from (length-checked at save;
//! the CRC pinned in the container is verified at open), so a periodic
//! checkpoint of a serving process rewrites only the container and the
//! small delta heap.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use bytes::{Buf, BufMut};
use streach_roadnet::{RoadNetwork, SegmentId, ShardMap};
use streach_storage::{
    BlobHandle, Crc32, FilePageStore, InMemoryPageStore, MmapPageStore, PageStore, PostingEncoding,
    PostingStore, SimulatedDiskStore, SnapshotReader, SnapshotWriter, StorageBackend, StorageError,
    StorageResult,
};

use crate::con_index::{ConIndex, ConnectionLists};
use crate::config::IndexConfig;
use crate::engine::ReachabilityEngine;
use crate::ingest::IngestState;
use crate::speed_stats::SpeedStats;
use crate::st_index::{StIndex, StIndexStats, StIndexStore};

/// File name of the snapshot container inside a snapshot directory.
pub const CONTAINER_FILE: &str = "index.snap";
/// File name of the base posting-heap page file inside a snapshot
/// directory.
pub const PAGES_FILE: &str = "postings.pages";
/// File-name prefix of the delta posting-heap page files inside a snapshot
/// directory (see [`delta_pages_file`]).
pub const DELTA_PAGES_PREFIX: &str = "deltas";

/// File name of the delta page file with the given save sequence number.
///
/// Unlike the base heap, the delta heap is rewritten on **every**
/// checkpoint, and the WAL records it covers may have been rotated away —
/// overwriting the previous delta file in place would make a crash between
/// the two publish renames destroy the only remaining copy of ingested
/// data. Each save therefore writes a fresh `deltas.<seq>.pages`; the
/// container names the sequence it belongs to, and superseded delta files
/// are deleted only after the new container is committed.
pub fn delta_pages_file(seq: u64) -> String {
    format!("{DELTA_PAGES_PREFIX}.{seq}.pages")
}

/// Which page store a snapshot-open wrapper is being offered (see
/// [`ReachabilityEngine::open_snapshot_with_stores`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreRole {
    /// The sealed-base posting heap (`postings.pages`, read-only).
    Base,
    /// The delta posting heap of previously ingested data, loaded into a
    /// writable in-memory store so further ingest never mutates the
    /// snapshot artifacts.
    Delta,
}

const SEC_CONFIG: &str = "config";
const SEC_NETWORK: &str = "network";
const SEC_PAGES_META: &str = "pages_meta";
const SEC_ST_INDEX: &str = "st_index";
const SEC_SPEED_STATS: &str = "speed_stats";
const SEC_CON_TABLES: &str = "con_tables";
const SEC_DELTA_PAGES_META: &str = "delta_pages_meta";
const SEC_DELTA_DIR: &str = "delta_dir";
const SEC_INGEST_META: &str = "ingest_meta";
/// Optional (container version 5): shard id (u16 LE) + encoded
/// [`ShardMap`]. Present only for shard engines; restores the ownership
/// filter at open so a reopened shard keeps folding only its own postings.
const SEC_SHARD_MAP: &str = "shard_map";
/// Optional (container version 5): the road network itself
/// ([`streach_roadnet::encode_network`], bit-exact roundtrip). Present for
/// self-contained snapshots, so a replica bootstraps from shipped
/// artifacts alone (see [`ReachabilityEngine::open_snapshot_standalone`]).
const SEC_ROAD_NETWORK: &str = "road_network";

/// Structural fingerprint of a road network (FNV-1a over segment count,
/// node count and every segment's length/class/topology), used to reject
/// opening a snapshot against a different network.
pub fn network_fingerprint(network: &RoadNetwork) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    };
    mix(network.num_segments() as u64);
    mix(network.num_nodes() as u64);
    for seg in network.segments() {
        mix(seg.length_m.to_bits());
        mix(seg.start_node.0 as u64);
        mix(seg.end_node.0 as u64);
        mix(seg.class as u64);
    }
    hash
}

fn encode_config(config: &IndexConfig) -> Vec<u8> {
    let mut buf = Vec::with_capacity(50);
    buf.put_u32_le(config.slot_s);
    buf.put_u64_le(config.pool_pages as u64);
    buf.put_u64_le(config.read_latency_us);
    buf.put_u64_le(config.max_cached_con_slots as u64);
    buf.put_u64_le(config.fallback_min_speed_ms.to_bits());
    buf.put_u32_le(config.read_retries);
    buf.put_u64_le(config.auto_checkpoint_bytes);
    buf.put_u8(config.storage_backend.config_byte());
    buf.put_u8(config.posting_encoding.config_byte());
    buf
}

/// Decodes the `config` section. Container version 3 wrote 48 bytes — those
/// snapshots predate the storage-backend choice and the tagged posting
/// encodings, so they reopen as `File` + `LegacyRaw` (the heap on disk *is*
/// untagged, and every blob appended later must stay consistent with it).
/// Version 4 appends one byte each for backend and encoding.
fn decode_config(mut buf: &[u8], container_version: u32) -> StorageResult<IndexConfig> {
    let expected_len = if container_version >= 4 { 50 } else { 48 };
    if buf.remaining() != expected_len {
        return Err(StorageError::corrupt("config section has wrong length"));
    }
    let mut config = IndexConfig {
        slot_s: buf.get_u32_le(),
        pool_pages: buf.get_u64_le() as usize,
        read_latency_us: buf.get_u64_le(),
        max_cached_con_slots: buf.get_u64_le() as usize,
        fallback_min_speed_ms: f64::from_bits(buf.get_u64_le()),
        read_retries: buf.get_u32_le(),
        auto_checkpoint_bytes: buf.get_u64_le(),
        storage_backend: StorageBackend::File,
        posting_encoding: PostingEncoding::LegacyRaw,
    };
    if container_version >= 4 {
        config.storage_backend = StorageBackend::from_config_byte(buf.get_u8())
            .ok_or_else(|| StorageError::corrupt("config section has unknown storage backend"))?;
        config.posting_encoding = PostingEncoding::from_config_byte(buf.get_u8())
            .ok_or_else(|| StorageError::corrupt("config section has unknown posting encoding"))?;
    }
    if config.slot_s == 0 || config.pool_pages == 0 {
        return Err(StorageError::corrupt("config section has invalid values"));
    }
    Ok(config)
}

/// ST-Index metadata: scalars, construction stats and the temporal
/// directory — all read from the one state pinned for this save.
fn encode_st_index(st: &StIndex, pinned: &crate::st_index::PinnedState) -> Vec<u8> {
    let directory = pinned.directory_entries();
    let entries: usize = directory.iter().map(|(_, e)| e.len()).sum();
    let mut buf = Vec::with_capacity(64 + directory.len() * 12 + entries * 16);
    buf.put_u32_le(st.slot_s());
    buf.put_u16_le(st.num_days());
    let stats = st.stats();
    buf.put_u64_le(stats.num_time_lists);
    buf.put_u64_le(stats.num_observations);
    buf.put_u64_le(stats.posting_bytes);
    buf.put_u64_le(stats.posting_pages);
    buf.put_u64_le(pinned.base_postings().size_bytes());
    buf.put_u32_le(directory.len() as u32);
    for (slot, entries) in &directory {
        buf.put_u32_le(*slot);
        buf.put_u32_le(entries.len() as u32);
        for (seg, handle) in entries {
            buf.put_u32_le(seg.0);
            buf.put_u64_le(handle.offset);
            buf.put_u32_le(handle.len);
        }
    }
    buf
}

struct StIndexParts {
    slot_s: u32,
    num_days: u16,
    stats: StIndexStats,
    tail: u64,
    directory: Vec<(u32, Vec<(SegmentId, BlobHandle)>)>,
}

fn decode_st_index(mut buf: &[u8]) -> StorageResult<StIndexParts> {
    let corrupt = || StorageError::corrupt("st_index section truncated");
    if buf.remaining() < 50 {
        return Err(corrupt());
    }
    let slot_s = buf.get_u32_le();
    let num_days = buf.get_u16_le();
    let stats = StIndexStats {
        num_time_lists: buf.get_u64_le(),
        num_observations: buf.get_u64_le(),
        posting_bytes: buf.get_u64_le(),
        posting_pages: buf.get_u64_le(),
    };
    let tail = buf.get_u64_le();
    let num_slots = buf.get_u32_le() as usize;
    // File-supplied count: cap the pre-allocation by what the buffer could
    // possibly hold (8 bytes minimum per slot record).
    let mut directory = Vec::with_capacity(num_slots.min(buf.remaining() / 8));
    let mut prev_slot: Option<u32> = None;
    for _ in 0..num_slots {
        if buf.remaining() < 8 {
            return Err(corrupt());
        }
        let slot = buf.get_u32_le();
        if prev_slot.is_some_and(|p| p >= slot) {
            return Err(StorageError::corrupt("st_index directory slots not sorted"));
        }
        prev_slot = Some(slot);
        let num_entries = buf.get_u32_le() as usize;
        if buf.remaining() < num_entries * 16 {
            return Err(corrupt());
        }
        let mut entries = Vec::with_capacity(num_entries);
        let mut prev_seg: Option<u32> = None;
        for _ in 0..num_entries {
            let seg = buf.get_u32_le();
            let offset = buf.get_u64_le();
            let len = buf.get_u32_le();
            if prev_seg.is_some_and(|p| p >= seg) {
                return Err(StorageError::corrupt(
                    "st_index directory entries not sorted",
                ));
            }
            prev_seg = Some(seg);
            if offset.checked_add(len as u64).is_none_or(|end| end > tail) {
                return Err(StorageError::corrupt(
                    "st_index blob handle points past the posting heap",
                ));
            }
            entries.push((SegmentId(seg), BlobHandle { offset, len }));
        }
        directory.push((slot, entries));
    }
    if buf.remaining() != 0 {
        return Err(StorageError::corrupt("st_index section has trailing bytes"));
    }
    if slot_s == 0 {
        return Err(StorageError::corrupt("st_index slot length is zero"));
    }
    Ok(StIndexParts {
        slot_s,
        num_days,
        stats,
        tail,
        directory,
    })
}

fn encode_con_tables(tables: &[(u32, Arc<crate::con_index::SlotTable>)]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u32_le(tables.len() as u32);
    for (slot, table) in tables {
        buf.put_u32_le(*slot);
        let lists = table.all_lists();
        buf.put_u32_le(lists.len() as u32);
        for l in lists {
            buf.put_u32_le(l.near.len() as u32);
            for seg in &l.near {
                buf.put_u32_le(seg.0);
            }
            buf.put_u32_le(l.far.len() as u32);
            for seg in &l.far {
                buf.put_u32_le(seg.0);
            }
        }
    }
    buf
}

fn decode_con_tables(
    mut buf: &[u8],
    num_segments: usize,
) -> StorageResult<Vec<(u32, Vec<ConnectionLists>)>> {
    let corrupt = || StorageError::corrupt("con_tables section truncated");
    if buf.remaining() < 4 {
        return Err(corrupt());
    }
    let num_tables = buf.get_u32_le() as usize;
    // File-supplied count: cap the pre-allocation by the remaining bytes.
    let mut tables = Vec::with_capacity(num_tables.min(buf.remaining() / 8));
    for _ in 0..num_tables {
        if buf.remaining() < 8 {
            return Err(corrupt());
        }
        let slot = buf.get_u32_le();
        let num_lists = buf.get_u32_le() as usize;
        if num_lists != num_segments {
            return Err(StorageError::corrupt(
                "con_tables table size does not match the network",
            ));
        }
        let mut lists = Vec::with_capacity(num_lists);
        for _ in 0..num_lists {
            let read_ids = |buf: &mut &[u8]| -> StorageResult<Vec<SegmentId>> {
                if buf.remaining() < 4 {
                    return Err(corrupt());
                }
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n * 4 {
                    return Err(corrupt());
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(SegmentId(buf.get_u32_le()));
                }
                Ok(ids)
            };
            let near = read_ids(&mut buf)?;
            let far = read_ids(&mut buf)?;
            lists.push(ConnectionLists { near, far });
        }
        tables.push((slot, lists));
    }
    if buf.remaining() != 0 {
        return Err(StorageError::corrupt(
            "con_tables section has trailing bytes",
        ));
    }
    Ok(tables)
}

/// The delta directory: ((slot, segment), handle) entries in key order.
fn encode_delta_dir(entries: &[((u32, u32), BlobHandle)]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + entries.len() * 20);
    buf.put_u32_le(entries.len() as u32);
    for ((slot, segment), handle) in entries {
        buf.put_u32_le(*slot);
        buf.put_u32_le(*segment);
        buf.put_u64_le(handle.offset);
        buf.put_u32_le(handle.len);
    }
    buf
}

fn decode_delta_dir(mut buf: &[u8], tail: u64) -> StorageResult<Vec<((u32, u32), BlobHandle)>> {
    let corrupt = || StorageError::corrupt("delta_dir section truncated");
    if buf.remaining() < 4 {
        return Err(corrupt());
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() != n * 20 {
        return Err(corrupt());
    }
    let mut entries = Vec::with_capacity(n);
    let mut prev: Option<(u32, u32)> = None;
    for _ in 0..n {
        let key = (buf.get_u32_le(), buf.get_u32_le());
        if prev.is_some_and(|p| p >= key) {
            return Err(StorageError::corrupt("delta_dir entries not sorted"));
        }
        prev = Some(key);
        let offset = buf.get_u64_le();
        let len = buf.get_u32_le();
        if offset.checked_add(len as u64).is_none_or(|end| end > tail) {
            return Err(StorageError::corrupt(
                "delta_dir blob handle points past the delta heap",
            ));
        }
        entries.push((key, BlobHandle { offset, len }));
    }
    Ok(entries)
}

/// Exports every page of `source` into a fresh page file at `path`,
/// returning (pages, CRC-32). The source is read underneath the latency
/// shim — export is an offline bulk copy, not simulated query I/O.
fn export_pages(source: &dyn PageStore, path: &Path) -> StorageResult<(u64, u32)> {
    let target = FilePageStore::create(path)?;
    let mut crc = Crc32::new();
    for page_id in 0..source.num_pages() {
        let page = source.read_page(page_id)?;
        crc.update(page.bytes());
        let id = target.allocate()?;
        debug_assert_eq!(id, page_id);
        target.write_page(page_id, &page)?;
    }
    target.flush()?;
    Ok((target.num_pages(), crc.finalize()))
}

/// Writes the engine's snapshot into `dir` (created if missing): the
/// container file plus the base and delta posting page files, all fsynced.
/// The caller holds the engine's ingest lock, so the delta tail cannot
/// move underneath the export.
///
/// Files are staged under `.tmp` names and renamed into place only after
/// they are fully written and synced, so re-saving over an existing
/// snapshot never destroys it on a crash mid-save. The container stores
/// each page file's length and CRC-32, so a torn set (crash between the
/// renames) — or any later bit rot in a page file — is rejected at open
/// instead of silently serving mismatched postings.
///
/// With `incremental`, the base page file is left untouched when the
/// target directory already holds the exact heap this engine serves
/// (length + CRC verified against the identity recorded at open).
pub(crate) fn save(
    engine: &ReachabilityEngine,
    dir: &Path,
    incremental: bool,
    ingest_state: &IngestState,
) -> StorageResult<()> {
    std::fs::create_dir_all(dir)?;
    let container_tmp = dir.join(format!("{CONTAINER_FILE}.tmp"));

    // Pin one (base, delta) state for the whole save. The caller holds the
    // ingest lock, which also excludes compaction, so this pinned pair is
    // the engine's state for the save's entire duration — while concurrent
    // queries keep being served from it untouched.
    let pinned = engine.st_index().pin_state();

    // 1. The base posting heap: reuse the published file when incremental
    //    and it still has the length the recorded identity expects (a full
    //    CRC pass here would make every checkpoint O(base); the CRC pinned
    //    in the container is verified at open, so in-place rot cannot be
    //    served — and re-exporting from the same rotten file would not
    //    save it either). Anything missing or resized is re-exported.
    let pages_path = dir.join(PAGES_FILE);
    let reusable = if incremental {
        engine.base_pages_identity().filter(|(pages, _)| {
            std::fs::metadata(&pages_path)
                .is_ok_and(|m| m.len() == pages * streach_storage::PAGE_SIZE as u64)
        })
    } else {
        None
    };
    let mut base_tmp = None;
    let (num_pages, pages_crc) = match reusable {
        Some(identity) => identity,
        None => {
            let tmp = dir.join(format!("{PAGES_FILE}.tmp"));
            let identity = export_pages(pinned.base_postings().store().inner(), &tmp)?;
            base_tmp = Some(tmp);
            identity
        }
    };

    // 2. The delta posting heap (empty file when nothing was ingested),
    //    under a fresh sequence-numbered name: the previous delta file is
    //    never touched until the new container is committed.
    let delta_seq = engine.next_delta_seq();
    let delta_name = delta_pages_file(delta_seq);
    let delta_tmp = dir.join(format!("{delta_name}.tmp"));
    let (delta_pages, delta_crc) =
        export_pages(pinned.delta_postings().store().inner(), &delta_tmp)?;

    // 3. Everything else goes into the checksummed container.
    let mut writer = SnapshotWriter::new();
    writer.add_section(SEC_CONFIG, encode_config(engine.config()));
    let mut network = Vec::with_capacity(8);
    network.put_u64_le(network_fingerprint(engine.network()));
    writer.add_section(SEC_NETWORK, network);
    let mut pages_meta = Vec::with_capacity(12);
    pages_meta.put_u64_le(num_pages);
    pages_meta.put_u32_le(pages_crc);
    writer.add_section(SEC_PAGES_META, pages_meta);
    writer.add_section(SEC_ST_INDEX, encode_st_index(engine.st_index(), &pinned));
    writer.add_section(SEC_SPEED_STATS, engine.con_index().speed_stats().encode());
    writer.add_section(
        SEC_CON_TABLES,
        encode_con_tables(&engine.con_index().export_cached_tables()),
    );
    let mut delta_meta = Vec::with_capacity(28);
    delta_meta.put_u64_le(delta_pages);
    delta_meta.put_u32_le(delta_crc);
    delta_meta.put_u64_le(pinned.delta_postings().size_bytes());
    delta_meta.put_u64_le(delta_seq);
    writer.add_section(SEC_DELTA_PAGES_META, delta_meta);
    writer.add_section(
        SEC_DELTA_DIR,
        encode_delta_dir(&pinned.delta_directory_entries()),
    );
    writer.add_section(
        SEC_INGEST_META,
        ReachabilityEngine::encode_ingest_meta(ingest_state),
    );
    if let Some((map, shard_id)) = engine.shard_ownership() {
        let encoded = map.encode();
        let mut buf = Vec::with_capacity(2 + encoded.len());
        buf.put_u16_le(shard_id);
        buf.extend_from_slice(&encoded);
        writer.add_section(SEC_SHARD_MAP, buf);
    }
    if engine.snapshot_self_contained() {
        writer.add_section(
            SEC_ROAD_NETWORK,
            streach_roadnet::encode_network(engine.network()),
        );
    }
    writer.finish(&container_tmp)?;

    // 4. Publish: every artifact was staged under a `.tmp` (or fresh
    //    sequence-numbered) name, so a failure before the container rename
    //    leaves the previous snapshot fully openable — the old container
    //    still references the old, untouched delta file. The container
    //    rename is the commit point. Residual window (pre-existing, full
    //    saves only): when the base heap itself was re-exported over an
    //    existing snapshot, a crash between the two renames below leaves a
    //    torn base/container pair that is rejected at open; the engine
    //    still holds that state and can simply re-save.
    std::fs::rename(&delta_tmp, dir.join(&delta_name))?;
    if let Some(tmp) = base_tmp {
        std::fs::rename(&tmp, &pages_path)?;
        engine.set_base_pages_identity((num_pages, pages_crc));
    }
    std::fs::rename(&container_tmp, dir.join(CONTAINER_FILE))?;
    engine.commit_delta_seq(delta_seq);

    // 5. Garbage-collect superseded delta files — everything matching the
    //    prefix except the one the just-committed container references.
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(DELTA_PAGES_PREFIX)
                && name.ends_with(".pages")
                && name != delta_name
            {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
    Ok(())
}

/// Stream-verifies the page file against the length and CRC recorded in the
/// container.
fn verify_pages_file(path: &Path, expected_pages: u64, expected_crc: u32) -> StorageResult<()> {
    use std::io::Read as _;
    let mut file = std::fs::File::open(path)?;
    let mut crc = Crc32::new();
    let mut buf = vec![0u8; 1 << 20];
    let mut total = 0u64;
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        crc.update(&buf[..n]);
        total += n as u64;
    }
    if total != expected_pages * streach_storage::PAGE_SIZE as u64 {
        return Err(StorageError::corrupt(format!(
            "posting page file has {total} bytes, expected {expected_pages} pages"
        )));
    }
    if crc.finalize() != expected_crc {
        return Err(StorageError::corrupt(
            "posting page file checksum mismatch (torn save or bit rot)",
        ));
    }
    Ok(())
}

/// Opens a sealed (read-only) page file through the chosen physical
/// backend. Both backends apply the same alignment validation and return
/// bit-identical pages; they differ only in the transport (read syscalls vs
/// a shared memory mapping).
fn open_sealed_pages(path: &Path, backend: StorageBackend) -> StorageResult<Box<dyn PageStore>> {
    Ok(match backend {
        StorageBackend::File => Box::new(FilePageStore::open_read_only(path)?),
        StorageBackend::Mmap => Box::new(MmapPageStore::open(path)?),
    })
}

/// Reopens an engine from the snapshot in `dir` against the given road
/// network. Fails with [`StorageError::Corrupt`] when the snapshot is
/// damaged or was built over a different network. `wrap` sees each
/// validated page store — [`StoreRole::Base`], then [`StoreRole::Delta`] —
/// before the engine takes ownership (identity for plain opens; a
/// fault-injection or instrumentation wrapper otherwise).
/// `backend_override` replaces the [`StorageBackend`] recorded in the
/// snapshot config for this open (and for every subsequent save from the
/// opened engine).
pub(crate) fn open<F>(
    dir: &Path,
    network: Arc<RoadNetwork>,
    backend_override: Option<StorageBackend>,
    mut wrap: F,
) -> StorageResult<ReachabilityEngine>
where
    F: FnMut(StoreRole, Box<dyn PageStore>) -> Box<dyn PageStore>,
{
    let reader = SnapshotReader::open(dir.join(CONTAINER_FILE))?;

    let mut fp_section = reader.section(SEC_NETWORK)?;
    if fp_section.remaining() != 8 {
        return Err(StorageError::corrupt("network section has wrong length"));
    }
    let stored_fp = fp_section.get_u64_le();
    let actual_fp = network_fingerprint(&network);
    if stored_fp != actual_fp {
        return Err(StorageError::corrupt(format!(
            "snapshot was built over a different road network \
             (stored fingerprint {stored_fp:#018x}, got {actual_fp:#018x})"
        )));
    }

    let mut config = decode_config(reader.section(SEC_CONFIG)?, reader.version())?;
    if let Some(backend) = backend_override {
        config.storage_backend = backend;
    }
    let parts = decode_st_index(reader.section(SEC_ST_INDEX)?)?;
    if parts.slot_s != config.slot_s {
        return Err(StorageError::corrupt(
            "st_index slot length disagrees with the config section",
        ));
    }

    // Verify the page file belongs to this container (length + CRC), then
    // reopen the posting heap over it — read-only, so snapshots deployed as
    // immutable artifacts still serve — behind the same latency shim the
    // in-memory backend uses (zero latency still counts page reads — and
    // here they are genuine disk reads).
    let mut pages_meta = reader.section(SEC_PAGES_META)?;
    if pages_meta.remaining() != 12 {
        return Err(StorageError::corrupt("pages_meta section has wrong length"));
    }
    let expected_pages = pages_meta.get_u64_le();
    let expected_crc = pages_meta.get_u32_le();
    let pages_path = dir.join(PAGES_FILE);
    verify_pages_file(&pages_path, expected_pages, expected_crc)?;
    let base_store = open_sealed_pages(&pages_path, config.storage_backend)?;
    if base_store.num_pages() < parts.tail.div_ceil(streach_storage::PAGE_SIZE as u64) {
        return Err(StorageError::corrupt(
            "posting page file is shorter than the posting heap",
        ));
    }
    let io = base_store.io_stats();
    let store: StIndexStore = SimulatedDiskStore::with_latency(
        wrap(StoreRole::Base, base_store),
        Duration::from_micros(config.read_latency_us),
        Duration::ZERO,
    );
    let postings = PostingStore::with_options(
        store,
        config.pool_pages,
        parts.tail,
        config.read_retries,
        config.posting_encoding,
    );

    // The delta heap of previously ingested data: verified against its
    // recorded length + CRC, then copied into a writable in-memory store
    // (further ingest must never mutate the snapshot artifacts). The copy
    // shares the base heap's I/O counters, so base and delta reads are
    // accounted identically.
    let mut delta_meta = reader.section(SEC_DELTA_PAGES_META)?;
    if delta_meta.remaining() != 28 {
        return Err(StorageError::corrupt(
            "delta_pages_meta section has wrong length",
        ));
    }
    let delta_expected_pages = delta_meta.get_u64_le();
    let delta_expected_crc = delta_meta.get_u32_le();
    let delta_tail = delta_meta.get_u64_le();
    let delta_seq = delta_meta.get_u64_le();
    if delta_tail.div_ceil(streach_storage::PAGE_SIZE as u64) > delta_expected_pages {
        return Err(StorageError::corrupt(
            "delta page file is shorter than the delta heap",
        ));
    }
    let delta_path = dir.join(delta_pages_file(delta_seq));
    verify_pages_file(&delta_path, delta_expected_pages, delta_expected_crc)?;
    let delta_mem = InMemoryPageStore::with_stats(io);
    {
        let delta_src = open_sealed_pages(&delta_path, config.storage_backend)?;
        for page_id in 0..delta_src.num_pages() {
            let page = delta_src.read_page(page_id)?;
            let id = delta_mem.allocate()?;
            debug_assert_eq!(id, page_id);
            delta_mem.write_page(page_id, &page)?;
        }
    }
    let delta_store: StIndexStore = SimulatedDiskStore::with_latency(
        wrap(StoreRole::Delta, Box::new(delta_mem) as Box<dyn PageStore>),
        Duration::from_micros(config.read_latency_us),
        Duration::ZERO,
    );
    let delta_postings = PostingStore::with_options(
        delta_store,
        config.pool_pages,
        delta_tail,
        config.read_retries,
        config.posting_encoding,
    );
    let delta_directory = decode_delta_dir(reader.section(SEC_DELTA_DIR)?, delta_tail)?;

    let st_index = StIndex::from_parts(
        network.clone(),
        parts.slot_s,
        parts.num_days,
        parts.stats,
        parts.directory,
        postings,
        delta_postings,
        delta_directory,
    );

    let speed_stats = Arc::new(
        SpeedStats::decode(reader.section(SEC_SPEED_STATS)?)
            .ok_or_else(|| StorageError::corrupt("speed_stats section is malformed"))?,
    );
    if speed_stats.slot_s() != config.slot_s {
        return Err(StorageError::corrupt(
            "speed_stats granularity disagrees with the config section",
        ));
    }
    let con_index = ConIndex::new(network.clone(), speed_stats, &config);
    con_index.install_tables(decode_con_tables(
        reader.section(SEC_CON_TABLES)?,
        network.num_segments(),
    )?);

    let (wal_generation, wal_applied, last_visit) =
        crate::ingest::decode_ingest_meta(reader.section(SEC_INGEST_META)?)?;

    let engine = ReachabilityEngine::new(network, st_index, con_index, config);
    engine.install_snapshot_meta(
        (expected_pages, expected_crc),
        wal_generation,
        wal_applied,
        last_visit,
    );
    engine.commit_delta_seq(delta_seq);
    engine.set_snapshot_home(dir);

    // Version-5 optional sections. Both are presence-checked: version-3/4
    // containers (and v5 containers of unsharded leaders) simply lack them.
    if reader.section_names().any(|n| n == SEC_SHARD_MAP) {
        let mut buf = reader.section(SEC_SHARD_MAP)?;
        if buf.remaining() < 2 {
            return Err(StorageError::corrupt("shard_map section truncated"));
        }
        let shard_id = buf.get_u16_le();
        let map = ShardMap::decode(buf)
            .ok_or_else(|| StorageError::corrupt("shard_map section is malformed"))?;
        if map.num_segments() != engine.network().num_segments() {
            return Err(StorageError::corrupt(
                "shard_map covers a different number of segments than the network",
            ));
        }
        if shard_id >= map.num_shards() {
            return Err(StorageError::corrupt("shard_map shard id out of range"));
        }
        engine.set_shard_ownership(Arc::new(map), shard_id);
    }
    if reader.section_names().any(|n| n == SEC_ROAD_NETWORK) {
        engine.set_snapshot_self_contained();
    }
    Ok(engine)
}

/// Decodes the road network embedded in a self-contained snapshot (see
/// [`ReachabilityEngine::open_snapshot_standalone`]). The caller passes it
/// straight back into [`open`], where the fingerprint check cross-validates
/// the codec roundtrip against the structural hash taken at save.
pub(crate) fn read_embedded_network(dir: &Path) -> StorageResult<Arc<RoadNetwork>> {
    let reader = SnapshotReader::open(dir.join(CONTAINER_FILE))?;
    if !reader.section_names().any(|n| n == SEC_ROAD_NETWORK) {
        return Err(StorageError::corrupt(
            "snapshot has no road_network section (not saved self-contained)",
        ));
    }
    let network = streach_roadnet::decode_network(reader.section(SEC_ROAD_NETWORK)?)
        .ok_or_else(|| StorageError::corrupt("road_network section is malformed"))?;
    Ok(Arc::new(network))
}

#[cfg(test)]
mod tests {
    use super::*;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};

    #[test]
    fn fingerprint_is_deterministic_and_discriminates() {
        let a = SyntheticCity::generate(GeneratorConfig::small()).network;
        let b = SyntheticCity::generate(GeneratorConfig::small()).network;
        assert_eq!(network_fingerprint(&a), network_fingerprint(&b));
        let other = SyntheticCity::generate(GeneratorConfig {
            seed: 77,
            ..GeneratorConfig::small()
        })
        .network;
        assert_ne!(network_fingerprint(&a), network_fingerprint(&other));
    }

    #[test]
    fn config_roundtrip() {
        let config = IndexConfig {
            slot_s: 600,
            pool_pages: 33,
            read_latency_us: 17,
            max_cached_con_slots: 9,
            fallback_min_speed_ms: 2.75,
            read_retries: 5,
            auto_checkpoint_bytes: 123_456,
            storage_backend: StorageBackend::Mmap,
            posting_encoding: PostingEncoding::Delta,
        };
        let bytes = encode_config(&config);
        assert_eq!(bytes.len(), 50);
        let decoded = decode_config(&bytes, streach_storage::SNAPSHOT_VERSION).unwrap();
        assert_eq!(decoded.slot_s, 600);
        assert_eq!(decoded.pool_pages, 33);
        assert_eq!(decoded.read_latency_us, 17);
        assert_eq!(decoded.max_cached_con_slots, 9);
        assert_eq!(decoded.fallback_min_speed_ms, 2.75);
        assert_eq!(decoded.read_retries, 5);
        assert_eq!(decoded.auto_checkpoint_bytes, 123_456);
        assert_eq!(decoded.storage_backend, StorageBackend::Mmap);
        assert_eq!(decoded.posting_encoding, PostingEncoding::Delta);
        assert!(decode_config(&[1, 2, 3], streach_storage::SNAPSHOT_VERSION).is_err());
    }

    #[test]
    fn legacy_v3_config_decodes_as_untagged_file_backend() {
        // A version-3 container's config section is the first 48 bytes of
        // the modern layout; it must reopen with the legacy heap encoding.
        let modern = encode_config(&IndexConfig::default());
        let legacy = &modern[..48];
        let decoded = decode_config(legacy, 3).unwrap();
        assert_eq!(decoded.storage_backend, StorageBackend::File);
        assert_eq!(decoded.posting_encoding, PostingEncoding::LegacyRaw);
        // Length/version mismatches in either direction are rejected.
        assert!(decode_config(legacy, 4).is_err());
        assert!(decode_config(&modern, 3).is_err());
        // Unknown enum bytes are corruption, not defaults.
        let mut bad = modern.clone();
        bad[48] = 0xEE;
        assert!(decode_config(&bad, 4).is_err());
        let mut bad = modern;
        bad[49] = 0xEE;
        assert!(decode_config(&bad, 4).is_err());
    }
}
