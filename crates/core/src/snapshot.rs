//! Engine snapshots: persist a built [`ReachabilityEngine`] to disk and
//! reopen it without touching the trajectory dataset.
//!
//! The paper's indexes are built *offline* over a 194 GB dataset; rebuilding
//! them from raw trajectories on every process start would dwarf any query
//! cost. A snapshot captures everything the engine derives from the data:
//!
//! * the **ST-Index** — its temporal directory (slot → segment → blob
//!   handle) in the snapshot container and its posting heap as a raw page
//!   file reopened through [`streach_storage::FilePageStore`], so a cold
//!   start serves queries with *real* page I/O against real disk pages,
//! * the **Con-Index** — the historical [`SpeedStats`] the tables are
//!   derived from (tables for any slot can be rebuilt without the dataset)
//!   plus every currently cached connection table, so a warmed engine
//!   reopens warm,
//! * the [`IndexConfig`] the indexes were built with.
//!
//! The **road network is not serialized** — it is a static input (generated
//! deterministically or loaded from map data), not a derivative of the
//! trajectories. [`ReachabilityEngine::open_snapshot`] takes the network as
//! an argument and validates it against a structural fingerprint stored in
//! the snapshot, so opening a snapshot against the wrong city fails loudly
//! instead of answering garbage.
//!
//! # Files
//!
//! A snapshot directory holds:
//!
//! * `index.snap` — the [`streach_storage::snapshot`] container (versioned
//!   header, named sections, CRC-32 per section and over the file),
//! * `postings.pages` — the ST-Index posting heap, one 4 KiB page per
//!   [`streach_storage::PAGE_SIZE`] slot, written with `fsync`.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use bytes::{Buf, BufMut};
use streach_roadnet::{RoadNetwork, SegmentId};
use streach_storage::{
    BlobHandle, Crc32, FilePageStore, PageStore, PostingStore, SimulatedDiskStore, SnapshotReader,
    SnapshotWriter, StorageError, StorageResult,
};

use crate::con_index::{ConIndex, ConnectionLists};
use crate::config::IndexConfig;
use crate::engine::ReachabilityEngine;
use crate::speed_stats::SpeedStats;
use crate::st_index::{StIndex, StIndexStats, StIndexStore};

/// File name of the snapshot container inside a snapshot directory.
pub const CONTAINER_FILE: &str = "index.snap";
/// File name of the posting-heap page file inside a snapshot directory.
pub const PAGES_FILE: &str = "postings.pages";

const SEC_CONFIG: &str = "config";
const SEC_NETWORK: &str = "network";
const SEC_PAGES_META: &str = "pages_meta";
const SEC_ST_INDEX: &str = "st_index";
const SEC_SPEED_STATS: &str = "speed_stats";
const SEC_CON_TABLES: &str = "con_tables";

/// Structural fingerprint of a road network (FNV-1a over segment count,
/// node count and every segment's length/class/topology), used to reject
/// opening a snapshot against a different network.
pub fn network_fingerprint(network: &RoadNetwork) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    };
    mix(network.num_segments() as u64);
    mix(network.num_nodes() as u64);
    for seg in network.segments() {
        mix(seg.length_m.to_bits());
        mix(seg.start_node.0 as u64);
        mix(seg.end_node.0 as u64);
        mix(seg.class as u64);
    }
    hash
}

fn encode_config(config: &IndexConfig) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    buf.put_u32_le(config.slot_s);
    buf.put_u64_le(config.pool_pages as u64);
    buf.put_u64_le(config.read_latency_us);
    buf.put_u64_le(config.max_cached_con_slots as u64);
    buf.put_u64_le(config.fallback_min_speed_ms.to_bits());
    buf
}

fn decode_config(mut buf: &[u8]) -> StorageResult<IndexConfig> {
    if buf.remaining() != 36 {
        return Err(StorageError::corrupt("config section has wrong length"));
    }
    let config = IndexConfig {
        slot_s: buf.get_u32_le(),
        pool_pages: buf.get_u64_le() as usize,
        read_latency_us: buf.get_u64_le(),
        max_cached_con_slots: buf.get_u64_le() as usize,
        fallback_min_speed_ms: f64::from_bits(buf.get_u64_le()),
    };
    if config.slot_s == 0 || config.pool_pages == 0 {
        return Err(StorageError::corrupt("config section has invalid values"));
    }
    Ok(config)
}

/// ST-Index metadata: scalars, construction stats and the temporal
/// directory.
fn encode_st_index(st: &StIndex) -> Vec<u8> {
    let directory = st.directory_entries();
    let entries: usize = directory.iter().map(|(_, e)| e.len()).sum();
    let mut buf = Vec::with_capacity(64 + directory.len() * 12 + entries * 16);
    buf.put_u32_le(st.slot_s());
    buf.put_u16_le(st.num_days());
    let stats = st.stats();
    buf.put_u64_le(stats.num_time_lists);
    buf.put_u64_le(stats.num_observations);
    buf.put_u64_le(stats.posting_bytes);
    buf.put_u64_le(stats.posting_pages);
    buf.put_u64_le(st.postings().size_bytes());
    buf.put_u32_le(directory.len() as u32);
    for (slot, entries) in &directory {
        buf.put_u32_le(*slot);
        buf.put_u32_le(entries.len() as u32);
        for (seg, handle) in entries {
            buf.put_u32_le(seg.0);
            buf.put_u64_le(handle.offset);
            buf.put_u32_le(handle.len);
        }
    }
    buf
}

struct StIndexParts {
    slot_s: u32,
    num_days: u16,
    stats: StIndexStats,
    tail: u64,
    directory: Vec<(u32, Vec<(SegmentId, BlobHandle)>)>,
}

fn decode_st_index(mut buf: &[u8]) -> StorageResult<StIndexParts> {
    let corrupt = || StorageError::corrupt("st_index section truncated");
    if buf.remaining() < 50 {
        return Err(corrupt());
    }
    let slot_s = buf.get_u32_le();
    let num_days = buf.get_u16_le();
    let stats = StIndexStats {
        num_time_lists: buf.get_u64_le(),
        num_observations: buf.get_u64_le(),
        posting_bytes: buf.get_u64_le(),
        posting_pages: buf.get_u64_le(),
    };
    let tail = buf.get_u64_le();
    let num_slots = buf.get_u32_le() as usize;
    // File-supplied count: cap the pre-allocation by what the buffer could
    // possibly hold (8 bytes minimum per slot record).
    let mut directory = Vec::with_capacity(num_slots.min(buf.remaining() / 8));
    let mut prev_slot: Option<u32> = None;
    for _ in 0..num_slots {
        if buf.remaining() < 8 {
            return Err(corrupt());
        }
        let slot = buf.get_u32_le();
        if prev_slot.is_some_and(|p| p >= slot) {
            return Err(StorageError::corrupt("st_index directory slots not sorted"));
        }
        prev_slot = Some(slot);
        let num_entries = buf.get_u32_le() as usize;
        if buf.remaining() < num_entries * 16 {
            return Err(corrupt());
        }
        let mut entries = Vec::with_capacity(num_entries);
        let mut prev_seg: Option<u32> = None;
        for _ in 0..num_entries {
            let seg = buf.get_u32_le();
            let offset = buf.get_u64_le();
            let len = buf.get_u32_le();
            if prev_seg.is_some_and(|p| p >= seg) {
                return Err(StorageError::corrupt(
                    "st_index directory entries not sorted",
                ));
            }
            prev_seg = Some(seg);
            if offset.checked_add(len as u64).is_none_or(|end| end > tail) {
                return Err(StorageError::corrupt(
                    "st_index blob handle points past the posting heap",
                ));
            }
            entries.push((SegmentId(seg), BlobHandle { offset, len }));
        }
        directory.push((slot, entries));
    }
    if buf.remaining() != 0 {
        return Err(StorageError::corrupt("st_index section has trailing bytes"));
    }
    if slot_s == 0 {
        return Err(StorageError::corrupt("st_index slot length is zero"));
    }
    Ok(StIndexParts {
        slot_s,
        num_days,
        stats,
        tail,
        directory,
    })
}

fn encode_con_tables(tables: &[(u32, Arc<crate::con_index::SlotTable>)]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u32_le(tables.len() as u32);
    for (slot, table) in tables {
        buf.put_u32_le(*slot);
        let lists = table.all_lists();
        buf.put_u32_le(lists.len() as u32);
        for l in lists {
            buf.put_u32_le(l.near.len() as u32);
            for seg in &l.near {
                buf.put_u32_le(seg.0);
            }
            buf.put_u32_le(l.far.len() as u32);
            for seg in &l.far {
                buf.put_u32_le(seg.0);
            }
        }
    }
    buf
}

fn decode_con_tables(
    mut buf: &[u8],
    num_segments: usize,
) -> StorageResult<Vec<(u32, Vec<ConnectionLists>)>> {
    let corrupt = || StorageError::corrupt("con_tables section truncated");
    if buf.remaining() < 4 {
        return Err(corrupt());
    }
    let num_tables = buf.get_u32_le() as usize;
    // File-supplied count: cap the pre-allocation by the remaining bytes.
    let mut tables = Vec::with_capacity(num_tables.min(buf.remaining() / 8));
    for _ in 0..num_tables {
        if buf.remaining() < 8 {
            return Err(corrupt());
        }
        let slot = buf.get_u32_le();
        let num_lists = buf.get_u32_le() as usize;
        if num_lists != num_segments {
            return Err(StorageError::corrupt(
                "con_tables table size does not match the network",
            ));
        }
        let mut lists = Vec::with_capacity(num_lists);
        for _ in 0..num_lists {
            let read_ids = |buf: &mut &[u8]| -> StorageResult<Vec<SegmentId>> {
                if buf.remaining() < 4 {
                    return Err(corrupt());
                }
                let n = buf.get_u32_le() as usize;
                if buf.remaining() < n * 4 {
                    return Err(corrupt());
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(SegmentId(buf.get_u32_le()));
                }
                Ok(ids)
            };
            let near = read_ids(&mut buf)?;
            let far = read_ids(&mut buf)?;
            lists.push(ConnectionLists { near, far });
        }
        tables.push((slot, lists));
    }
    if buf.remaining() != 0 {
        return Err(StorageError::corrupt(
            "con_tables section has trailing bytes",
        ));
    }
    Ok(tables)
}

/// Writes the engine's snapshot into `dir` (created if missing): the
/// container file plus the posting page file, both fsynced.
///
/// Both files are staged under `.tmp` names and renamed into place only
/// after they are fully written and synced, so re-saving over an existing
/// snapshot never destroys it on a crash mid-save. The container stores the
/// page file's length and CRC-32, so a torn pair (crash between the two
/// renames) — or any later bit rot in the page file — is rejected at open
/// instead of silently serving mismatched postings.
pub(crate) fn save(engine: &ReachabilityEngine, dir: &Path) -> StorageResult<()> {
    std::fs::create_dir_all(dir)?;
    let pages_tmp = dir.join(format!("{PAGES_FILE}.tmp"));
    let container_tmp = dir.join(format!("{CONTAINER_FILE}.tmp"));

    // 1. Export the posting heap page by page onto real disk, checksumming
    //    as we go. The source store is read underneath the latency shim —
    //    export is an offline bulk copy, not simulated query I/O.
    let postings = engine.st_index().postings();
    let source = postings.store().inner();
    let target = FilePageStore::create(&pages_tmp)?;
    let mut pages_crc = Crc32::new();
    for page_id in 0..source.num_pages() {
        let page = source.read_page(page_id)?;
        pages_crc.update(page.bytes());
        let id = target.allocate()?;
        debug_assert_eq!(id, page_id);
        target.write_page(page_id, &page)?;
    }
    target.flush()?;
    let num_pages = target.num_pages();

    // 2. Everything else goes into the checksummed container.
    let mut writer = SnapshotWriter::new();
    writer.add_section(SEC_CONFIG, encode_config(engine.config()));
    let mut network = Vec::with_capacity(8);
    network.put_u64_le(network_fingerprint(engine.network()));
    writer.add_section(SEC_NETWORK, network);
    let mut pages_meta = Vec::with_capacity(12);
    pages_meta.put_u64_le(num_pages);
    pages_meta.put_u32_le(pages_crc.finalize());
    writer.add_section(SEC_PAGES_META, pages_meta);
    writer.add_section(SEC_ST_INDEX, encode_st_index(engine.st_index()));
    writer.add_section(SEC_SPEED_STATS, engine.con_index().speed_stats().encode());
    writer.add_section(
        SEC_CON_TABLES,
        encode_con_tables(&engine.con_index().export_cached_tables()),
    );
    writer.finish(&container_tmp)?;

    // 3. Publish: the container rename is the commit point; the pages CRC
    //    stored inside it pins exactly which page file it belongs to.
    std::fs::rename(&pages_tmp, dir.join(PAGES_FILE))?;
    std::fs::rename(&container_tmp, dir.join(CONTAINER_FILE))?;
    Ok(())
}

/// Stream-verifies the page file against the length and CRC recorded in the
/// container.
fn verify_pages_file(path: &Path, expected_pages: u64, expected_crc: u32) -> StorageResult<()> {
    use std::io::Read as _;
    let mut file = std::fs::File::open(path)?;
    let mut crc = Crc32::new();
    let mut buf = vec![0u8; 1 << 20];
    let mut total = 0u64;
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            break;
        }
        crc.update(&buf[..n]);
        total += n as u64;
    }
    if total != expected_pages * streach_storage::PAGE_SIZE as u64 {
        return Err(StorageError::corrupt(format!(
            "posting page file has {total} bytes, expected {expected_pages} pages"
        )));
    }
    if crc.finalize() != expected_crc {
        return Err(StorageError::corrupt(
            "posting page file checksum mismatch (torn save or bit rot)",
        ));
    }
    Ok(())
}

/// Reopens an engine from the snapshot in `dir` against the given road
/// network. Fails with [`StorageError::Corrupt`] when the snapshot is
/// damaged or was built over a different network. `wrap` sees the validated
/// page store before the engine takes ownership (identity for plain opens;
/// a fault-injection or instrumentation wrapper otherwise).
pub(crate) fn open<F>(
    dir: &Path,
    network: Arc<RoadNetwork>,
    wrap: F,
) -> StorageResult<ReachabilityEngine>
where
    F: FnOnce(Box<dyn PageStore>) -> Box<dyn PageStore>,
{
    let reader = SnapshotReader::open(dir.join(CONTAINER_FILE))?;

    let mut fp_section = reader.section(SEC_NETWORK)?;
    if fp_section.remaining() != 8 {
        return Err(StorageError::corrupt("network section has wrong length"));
    }
    let stored_fp = fp_section.get_u64_le();
    let actual_fp = network_fingerprint(&network);
    if stored_fp != actual_fp {
        return Err(StorageError::corrupt(format!(
            "snapshot was built over a different road network \
             (stored fingerprint {stored_fp:#018x}, got {actual_fp:#018x})"
        )));
    }

    let config = decode_config(reader.section(SEC_CONFIG)?)?;
    let parts = decode_st_index(reader.section(SEC_ST_INDEX)?)?;
    if parts.slot_s != config.slot_s {
        return Err(StorageError::corrupt(
            "st_index slot length disagrees with the config section",
        ));
    }

    // Verify the page file belongs to this container (length + CRC), then
    // reopen the posting heap over it — read-only, so snapshots deployed as
    // immutable artifacts still serve — behind the same latency shim the
    // in-memory backend uses (zero latency still counts page reads — and
    // here they are genuine disk reads).
    let mut pages_meta = reader.section(SEC_PAGES_META)?;
    if pages_meta.remaining() != 12 {
        return Err(StorageError::corrupt("pages_meta section has wrong length"));
    }
    let expected_pages = pages_meta.get_u64_le();
    let expected_crc = pages_meta.get_u32_le();
    let pages_path = dir.join(PAGES_FILE);
    verify_pages_file(&pages_path, expected_pages, expected_crc)?;
    let file_store = FilePageStore::open_read_only(&pages_path)?;
    if file_store.num_pages() < parts.tail.div_ceil(streach_storage::PAGE_SIZE as u64) {
        return Err(StorageError::corrupt(
            "posting page file is shorter than the posting heap",
        ));
    }
    let store: StIndexStore = SimulatedDiskStore::with_latency(
        wrap(Box::new(file_store) as Box<dyn PageStore>),
        Duration::from_micros(config.read_latency_us),
        Duration::ZERO,
    );
    let postings = PostingStore::with_tail(store, config.pool_pages, parts.tail);
    let st_index = StIndex::from_parts(
        network.clone(),
        parts.slot_s,
        parts.num_days,
        parts.stats,
        parts.directory,
        postings,
    );

    let speed_stats = Arc::new(
        SpeedStats::decode(reader.section(SEC_SPEED_STATS)?)
            .ok_or_else(|| StorageError::corrupt("speed_stats section is malformed"))?,
    );
    if speed_stats.slot_s() != config.slot_s {
        return Err(StorageError::corrupt(
            "speed_stats granularity disagrees with the config section",
        ));
    }
    let con_index = ConIndex::new(network.clone(), speed_stats, &config);
    con_index.install_tables(decode_con_tables(
        reader.section(SEC_CON_TABLES)?,
        network.num_segments(),
    )?);

    Ok(ReachabilityEngine::new(
        network, st_index, con_index, config,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};

    #[test]
    fn fingerprint_is_deterministic_and_discriminates() {
        let a = SyntheticCity::generate(GeneratorConfig::small()).network;
        let b = SyntheticCity::generate(GeneratorConfig::small()).network;
        assert_eq!(network_fingerprint(&a), network_fingerprint(&b));
        let other = SyntheticCity::generate(GeneratorConfig {
            seed: 77,
            ..GeneratorConfig::small()
        })
        .network;
        assert_ne!(network_fingerprint(&a), network_fingerprint(&other));
    }

    #[test]
    fn config_roundtrip() {
        let config = IndexConfig {
            slot_s: 600,
            pool_pages: 33,
            read_latency_us: 17,
            max_cached_con_slots: 9,
            fallback_min_speed_ms: 2.75,
        };
        let decoded = decode_config(&encode_config(&config)).unwrap();
        assert_eq!(decoded.slot_s, 600);
        assert_eq!(decoded.pool_pages, 33);
        assert_eq!(decoded.read_latency_us, 17);
        assert_eq!(decoded.max_cached_con_slots, 9);
        assert_eq!(decoded.fallback_min_speed_ms, 2.75);
        assert!(decode_config(&[1, 2, 3]).is_err());
    }
}
