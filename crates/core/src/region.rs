//! Query results: Prob-reachable regions.

use streach_geo::Mbr;
use streach_roadnet::{RoadNetwork, SegmentId};

/// A Prob-reachable region: "a set of road segments which contain all the
/// road segments that trajectory reachability from S for each of them is 1"
/// (with at least probability `Prob` over the historical days).
///
/// The evaluation's effectiveness metric is "the total length of all
/// reachable road segments", which is cached here in kilometres.
#[derive(Debug, Clone, PartialEq)]
pub struct ReachableRegion {
    /// The reachable road segments, sorted by ID and deduplicated.
    pub segments: Vec<SegmentId>,
    /// Total length of the reachable segments in kilometres.
    pub total_length_km: f64,
}

impl ReachableRegion {
    /// An empty region.
    pub fn empty() -> Self {
        Self {
            segments: Vec::new(),
            total_length_km: 0.0,
        }
    }

    /// Builds a region from a set of segments (deduplicating them) and
    /// computes its total length over the given network.
    pub fn from_segments(network: &RoadNetwork, mut segments: Vec<SegmentId>) -> Self {
        segments.sort_unstable();
        segments.dedup();
        let total_length_km = network.length_of_km(&segments);
        Self {
            segments,
            total_length_km,
        }
    }

    /// Number of segments in the region.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Returns `true` when the region contains no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Returns `true` when the region contains the segment.
    pub fn contains(&self, segment: SegmentId) -> bool {
        self.segments.binary_search(&segment).is_ok()
    }

    /// The union of this region with another (e.g. merging per-location
    /// results of an m-query).
    pub fn union(&self, network: &RoadNetwork, other: &ReachableRegion) -> ReachableRegion {
        let mut segments = self.segments.clone();
        segments.extend_from_slice(&other.segments);
        ReachableRegion::from_segments(network, segments)
    }

    /// Bounding rectangle of the region's geometry.
    pub fn mbr(&self, network: &RoadNetwork) -> Mbr {
        let mut mbr = Mbr::EMPTY;
        for &seg in &self.segments {
            mbr.expand(&network.segment(seg).mbr);
        }
        mbr
    }

    /// Returns `true` when every segment of `other` is also in `self`.
    pub fn is_superset_of(&self, other: &ReachableRegion) -> bool {
        other.segments.iter().all(|s| self.contains(*s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streach_roadnet::{GeneratorConfig, SyntheticCity};

    fn network() -> RoadNetwork {
        SyntheticCity::generate(GeneratorConfig::small()).network
    }

    #[test]
    fn empty_region() {
        let r = ReachableRegion::empty();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.total_length_km, 0.0);
        assert!(!r.contains(SegmentId(0)));
    }

    #[test]
    fn from_segments_dedups_and_measures() {
        let net = network();
        let segs = vec![SegmentId(3), SegmentId(1), SegmentId(3), SegmentId(2)];
        let r = ReachableRegion::from_segments(&net, segs);
        assert_eq!(r.len(), 3);
        assert_eq!(r.segments, vec![SegmentId(1), SegmentId(2), SegmentId(3)]);
        let expected = net.length_of_km(&r.segments);
        assert!((r.total_length_km - expected).abs() < 1e-12);
        assert!(r.contains(SegmentId(2)));
        assert!(!r.contains(SegmentId(5)));
    }

    #[test]
    fn union_is_superset_of_both() {
        let net = network();
        let a = ReachableRegion::from_segments(&net, vec![SegmentId(1), SegmentId(2)]);
        let b = ReachableRegion::from_segments(&net, vec![SegmentId(2), SegmentId(7)]);
        let u = a.union(&net, &b);
        assert_eq!(u.len(), 3);
        assert!(u.is_superset_of(&a));
        assert!(u.is_superset_of(&b));
        assert!(!a.is_superset_of(&u));
        assert!(u.total_length_km >= a.total_length_km.max(b.total_length_km));
    }

    #[test]
    fn mbr_covers_every_segment() {
        let net = network();
        let r =
            ReachableRegion::from_segments(&net, vec![SegmentId(0), SegmentId(50), SegmentId(100)]);
        let mbr = r.mbr(&net);
        for &s in &r.segments {
            assert!(mbr.contains(&net.segment(s).mbr));
        }
    }
}
