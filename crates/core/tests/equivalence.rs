//! Equivalence regression suite: the optimized query hot path must return
//! **bit-identical** regions to (a) the naive reference implementations and
//! (b) the exhaustive-search baseline, across a grid of query parameters on
//! a seeded scenario. A perf refactor that changes any result breaks this
//! test.

use std::sync::Arc;

use streach_core::con_index::ConIndex;
use streach_core::config::IndexConfig;
use streach_core::query::es::exhaustive_search;
use streach_core::query::mqmb::{mqmb, mqmb_trace_back};
use streach_core::query::reference::{
    naive_exhaustive_search, naive_trace_back_search, NaiveVerifier,
};
use streach_core::query::sqmb::sqmb;
use streach_core::query::tbs::trace_back_search;
use streach_core::query::verifier::{ReachabilityVerifier, VerifierCore, VerifierScratch};
use streach_core::query::SQuery;
use streach_core::speed_stats::SpeedStats;
use streach_core::st_index::StIndex;
use streach_geo::GeoPoint;
use streach_roadnet::{GeneratorConfig, RoadNetwork, SegmentId, SyntheticCity};
use streach_traj::{FleetConfig, TrajectoryDataset};

struct Fixture {
    network: Arc<RoadNetwork>,
    st: StIndex,
    con: ConIndex,
    center: GeoPoint,
}

fn fixture() -> Fixture {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 30,
            num_days: 5,
            day_start_s: 8 * 3600,
            day_end_s: 14 * 3600,
            seed: 7,
            ..FleetConfig::default()
        },
    );
    let config = IndexConfig {
        read_latency_us: 0,
        ..Default::default()
    };
    let st = StIndex::build(network.clone(), &dataset, &config);
    let stats = Arc::new(SpeedStats::from_dataset(&network, &dataset, config.slot_s));
    let con = ConIndex::new(network.clone(), stats, &config);
    Fixture {
        network,
        st,
        con,
        center,
    }
}

/// The (T, L, Prob) grid every assertion sweeps.
fn grid() -> Vec<(u32, u32, f64)> {
    let mut out = Vec::new();
    for start_h in [9u32, 11] {
        for duration_s in [300u32, 900, 1500] {
            for prob in [0.2f64, 0.5, 0.9] {
                out.push((start_h * 3600, duration_s, prob));
            }
        }
    }
    out
}

/// The optimized verifier agrees with the naive one on every probability it
/// computes — the sharpest possible check, segment by segment.
#[test]
fn optimized_verifier_matches_naive_probabilities() {
    let f = fixture();
    let start = f.network.nearest_segment(&f.center).unwrap().0;
    for (t, l, _) in grid() {
        let naive = NaiveVerifier::new(&f.st, start, t, l).unwrap();
        let core = VerifierCore::new(&f.st, start, t, l).unwrap();
        let mut scratch = VerifierScratch::new();
        for seg in f.network.segment_ids().step_by(3) {
            let expected = naive.probability(seg).unwrap();
            let got = core.probability(&mut scratch, seg).unwrap();
            assert_eq!(got, expected, "T={t} L={l} segment {seg}");
        }
    }
}

/// Optimized ES returns the same region as the naive reference ES.
#[test]
fn optimized_es_matches_naive_es() {
    let f = fixture();
    let start = f.network.nearest_segment(&f.center).unwrap().0;
    for (t, l, prob) in grid() {
        let q = SQuery {
            location: f.center,
            start_time_s: t,
            duration_s: l,
            prob,
        };
        let optimized = exhaustive_search(&f.network, &f.st, &q, start).unwrap();
        let naive = naive_exhaustive_search(&f.network, &f.st, &q, start).unwrap();
        assert_eq!(
            optimized.region.segments, naive.segments,
            "ES mismatch at T={t} L={l} prob={prob}"
        );
    }
}

/// Optimized (parallel) TBS returns the same region as the naive sequential
/// queue of Algorithm 2.
#[test]
fn optimized_tbs_matches_naive_tbs() {
    let f = fixture();
    let start = f.network.nearest_segment(&f.center).unwrap().0;
    for (t, l, prob) in grid() {
        let bounds = sqmb(&f.con, f.network.num_segments(), start, t, l);
        let verifier = ReachabilityVerifier::new(&f.st, start, t, l).unwrap();
        let optimized = trace_back_search(&f.network, verifier.core(), &bounds, prob).unwrap();
        let naive = naive_trace_back_search(&f.network, &f.st, &bounds, start, t, l, prob).unwrap();
        assert_eq!(
            optimized.region.segments, naive.segments,
            "TBS mismatch at T={t} L={l} prob={prob}"
        );
    }
}

/// SQMB+TBS against the ES baseline on the whole grid. Everywhere both
/// algorithms *verify* a segment the answers are bit-identical; the two may
/// only differ in the exact, documented ways the paper's bounds allow:
///
/// * TBS admits the minimum bounding region without verification (reachable
///   even at the historically slowest speeds) — so `TBS ∖ ES ⊆ min region`,
/// * TBS never looks outside the maximum bounding region — so
///   `ES ∖ TBS ⊆ complement of max region`.
///
/// Full bit-equality is structurally impossible for the paper's own
/// semantics (e.g. a night query returns the whole minimum bounding region
/// from TBS and only the start segment from ES); this decomposition is the
/// strongest equivalence that holds, and it pins every verified probability
/// bit-exactly.
#[test]
fn sqmb_tbs_matches_es_baseline_on_verified_segments() {
    let f = fixture();
    let start = f.network.nearest_segment(&f.center).unwrap().0;
    for (t, l, prob) in grid() {
        let q = SQuery {
            location: f.center,
            start_time_s: t,
            duration_s: l,
            prob,
        };
        let es = exhaustive_search(&f.network, &f.st, &q, start).unwrap();
        let bounds = sqmb(&f.con, f.network.num_segments(), start, t, l);
        let verifier = ReachabilityVerifier::new(&f.st, start, t, l).unwrap();
        let tbs = trace_back_search(&f.network, verifier.core(), &bounds, prob).unwrap();

        let es_set: std::collections::HashSet<_> = es.region.segments.iter().copied().collect();
        let tbs_set: std::collections::HashSet<_> = tbs.region.segments.iter().copied().collect();
        let min_set: std::collections::HashSet<_> = bounds.min_region.iter().copied().collect();
        let max_set: std::collections::HashSet<_> = bounds.max_region.iter().copied().collect();

        // Bit-identical verdicts on every segment both algorithms verify.
        for seg in bounds.annulus() {
            assert_eq!(
                tbs_set.contains(&seg),
                es_set.contains(&seg),
                "verified verdicts diverge for {seg} at T={t} L={l} prob={prob}"
            );
        }
        // Divergence is confined to the documented cases.
        for seg in tbs_set.difference(&es_set) {
            assert!(
                min_set.contains(seg),
                "{seg} in TBS but not ES and outside the min region (T={t} L={l} prob={prob})"
            );
        }
        for seg in es_set.difference(&tbs_set) {
            assert!(
                !max_set.contains(seg),
                "{seg} in ES but not TBS yet inside the max region (T={t} L={l} prob={prob})"
            );
        }
    }
}

/// Single-location MQMB+trace-back equals the s-query pipeline (and hence
/// ES) exactly.
#[test]
fn single_location_mqmb_matches_squery_pipeline() {
    let f = fixture();
    let start = f.network.nearest_segment(&f.center).unwrap().0;
    for (t, l, prob) in grid() {
        let bounds = sqmb(&f.con, f.network.num_segments(), start, t, l);
        let verifier = ReachabilityVerifier::new(&f.st, start, t, l).unwrap();
        let s_region = trace_back_search(&f.network, verifier.core(), &bounds, prob)
            .unwrap()
            .region;

        let m_bounds = mqmb(&f.con, &f.network, &[start], &[f.center], t, l);
        let m_region = mqmb_trace_back(&f.network, &f.st, &m_bounds, &[start], t, l, prob)
            .unwrap()
            .region;
        // The m-query result additionally pins the start segment into the
        // region; the s-query pipeline includes it through the minimum
        // bounding region, so the sets must agree exactly.
        assert_eq!(
            m_region.segments, s_region.segments,
            "single-location MQMB diverges at T={t} L={l} prob={prob}"
        );
    }
}

/// Multi-location MQMB trace-back equals a naive per-owner verification of
/// the same unified bounds.
#[test]
fn multi_location_mqmb_matches_naive_owner_verification() {
    let f = fixture();
    let start_points = vec![
        f.center,
        f.center.offset_m(1500.0, 0.0),
        f.center.offset_m(0.0, -1500.0),
    ];
    let starts: Vec<SegmentId> = start_points
        .iter()
        .map(|p| f.network.nearest_segment(p).unwrap().0)
        .collect();
    for (t, l, prob) in [(9 * 3600u32, 900u32, 0.2f64), (11 * 3600, 1500, 0.5)] {
        let bounds = mqmb(&f.con, &f.network, &starts, &start_points, t, l);
        let optimized = mqmb_trace_back(&f.network, &f.st, &bounds, &starts, t, l, prob).unwrap();

        // Naive: sequential owner-routed verification with fresh hash maps.
        let verifiers: Vec<NaiveVerifier<'_>> = starts
            .iter()
            .map(|&s| NaiveVerifier::new(&f.st, s, t, l).unwrap())
            .collect();
        let mut segments: Vec<SegmentId> = bounds.min_region.clone();
        segments.extend_from_slice(&starts);
        for seg in bounds.annulus() {
            let owner = bounds.owner_of(seg).unwrap_or(0);
            if verifiers[owner].probability(seg).unwrap() >= prob {
                segments.push(seg);
            }
        }
        let naive = streach_core::ReachableRegion::from_segments(&f.network, segments);
        assert_eq!(
            optimized.region.segments, naive.segments,
            "MQMB mismatch at T={t} L={l} prob={prob}"
        );
    }
}

/// Satellite guard for the fallible plumbing: on a fault-free store the
/// `try_*` pipelines must return **bit-identical** regions to the panicking
/// wrappers for every algorithm on the whole grid — the error paths ride
/// along the hot path without perturbing a single probability.
#[test]
fn fallible_pipelines_match_panicking_wrappers_on_fault_free_store() {
    use streach_core::query::{Algorithm, MQuery, MQueryAlgorithm};

    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 30,
            num_days: 5,
            day_start_s: 8 * 3600,
            day_end_s: 14 * 3600,
            seed: 7,
            ..FleetConfig::default()
        },
    );
    let engine = streach_core::EngineBuilder::new(network.clone(), &dataset)
        .index_config(IndexConfig {
            read_latency_us: 0,
            ..Default::default()
        })
        .build();

    for (t, l, prob) in grid() {
        let q = streach_core::query::SQuery {
            location: center,
            start_time_s: t,
            duration_s: l,
            prob,
        };
        for algo in [Algorithm::SqmbTbs, Algorithm::ExhaustiveSearch] {
            let fallible = engine.try_s_query(&q, algo).expect("fault-free store");
            let panicking = engine.s_query(&q, algo);
            assert_eq!(
                fallible.region.segments, panicking.region.segments,
                "{algo:?} region diverged at T={t} L={l} prob={prob}"
            );
            assert_eq!(
                fallible.region.total_length_km.to_bits(),
                panicking.region.total_length_km.to_bits(),
                "{algo:?} length diverged at T={t} L={l} prob={prob}"
            );
        }
    }

    let m = MQuery {
        locations: vec![center, center.offset_m(1500.0, 0.0)],
        start_time_s: 9 * 3600,
        duration_s: 900,
        prob: 0.2,
    };
    for algo in [MQueryAlgorithm::MqmbTbs, MQueryAlgorithm::RepeatedSQuery] {
        let fallible = engine.try_m_query(&m, algo).expect("fault-free store");
        let panicking = engine.m_query(&m, algo);
        assert_eq!(
            fallible.region.segments, panicking.region.segments,
            "{algo:?} m-query region diverged"
        );
        assert_eq!(
            fallible.region.total_length_km.to_bits(),
            panicking.region.total_length_km.to_bits(),
            "{algo:?} m-query length diverged"
        );
    }
}
