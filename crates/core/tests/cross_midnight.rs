//! Cross-midnight regression suite.
//!
//! The bounding phase (SQMB / Con-Index, `StIndex::lookup`) has always used
//! modular slot arithmetic — slots past midnight wrap onto the beginning of
//! the day — while the verifiers used to clamp the query window at
//! `SECONDS_PER_DAY`. A 23:55 query with a 10-minute duration was therefore
//! *bounded* over slots {287, 0, 1} but *verified* over slot 287 alone,
//! silently under-reporting probabilities near midnight. The wrap semantics
//! is now applied end to end; this suite pins it on both the optimized and
//! the reference paths.

use std::sync::Arc;

use streach_core::con_index::ConIndex;
use streach_core::config::IndexConfig;
use streach_core::query::es::exhaustive_search;
use streach_core::query::reference::{
    naive_exhaustive_search, naive_trace_back_search, NaiveVerifier,
};
use streach_core::query::sqmb::sqmb;
use streach_core::query::tbs::trace_back_search;
use streach_core::query::verifier::{VerifierCore, VerifierScratch};
use streach_core::query::SQuery;
use streach_core::speed_stats::SpeedStats;
use streach_core::st_index::StIndex;
use streach_geo::GeoPoint;
use streach_roadnet::{GeneratorConfig, RoadNetwork, SyntheticCity};
use streach_traj::{FleetConfig, TrajectoryDataset};

/// 23:55, the canonical cross-midnight query start.
const LATE_START: u32 = 23 * 3600 + 55 * 60;
/// 10 minutes — the window ends at 00:05 (wrapped).
const DURATION: u32 = 600;

struct Fixture {
    network: Arc<RoadNetwork>,
    dataset: TrajectoryDataset,
    st: StIndex,
    con: ConIndex,
    center: GeoPoint,
}

/// An around-the-clock fleet so that slots on both sides of midnight hold
/// data.
fn fixture() -> Fixture {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 25,
            num_days: 4,
            day_start_s: 0,
            day_end_s: streach_traj::SECONDS_PER_DAY,
            seed: 99,
            ..FleetConfig::default()
        },
    );
    let config = IndexConfig {
        read_latency_us: 0,
        ..Default::default()
    };
    let st = StIndex::build(network.clone(), &dataset, &config);
    let stats = Arc::new(SpeedStats::from_dataset(&network, &dataset, config.slot_s));
    let con = ConIndex::new(network.clone(), stats, &config);
    Fixture {
        network,
        dataset,
        st,
        con,
        center,
    }
}

/// `ids_in_window` with a window crossing midnight reads the wrapped slots:
/// a trajectory seen only in the first minutes of the day is found by a
/// 23:55–00:05 window on the same date.
#[test]
fn ids_in_window_wraps_past_midnight() {
    let f = fixture();
    // Find a visit inside slot 0 (00:00–00:05).
    let (seg, date, id) = f
        .dataset
        .trajectories()
        .iter()
        .flat_map(|t| {
            t.visits
                .iter()
                .filter(|v| v.enter_time_s < 300)
                .map(move |v| (v.segment, t.date, t.traj_id))
        })
        .next()
        .expect("around-the-clock fleet must produce visits in slot 0");
    let wrapped =
        f.st.ids_in_window(seg, LATE_START, LATE_START + DURATION, date)
            .unwrap();
    assert!(
        wrapped.contains(&id),
        "wrapped window must reach slot 0 of the same date"
    );
    // A window stopping at midnight does not see it (unless the same
    // trajectory also drove the segment in the last slot of the day, which
    // the sorted result makes cheap to allow for).
    let clamped =
        f.st.ids_in_window(seg, LATE_START, streach_traj::SECONDS_PER_DAY, date)
            .unwrap();
    assert!(clamped.len() <= wrapped.len());
}

/// Optimized and reference verifiers agree probability-for-probability on
/// the cross-midnight window — and at least one probability is only
/// non-zero because of the wrap.
#[test]
fn verifier_matches_reference_across_midnight() {
    let f = fixture();
    let start = f.network.nearest_segment(&f.center).unwrap().0;
    let naive = NaiveVerifier::new(&f.st, start, LATE_START, DURATION).unwrap();
    let core = VerifierCore::new(&f.st, start, LATE_START, DURATION).unwrap();
    let mut scratch = VerifierScratch::new();
    let mut nonzero = 0usize;
    for seg in f.network.segment_ids() {
        let expected = naive.probability(seg).unwrap();
        let got = core.probability(&mut scratch, seg).unwrap();
        assert_eq!(got, expected, "cross-midnight probability for {seg}");
        if got > 0.0 {
            nonzero += 1;
        }
    }
    assert!(
        nonzero > 0,
        "an around-the-clock fleet must make some segment reachable at 23:55"
    );
}

/// The full optimized SQMB+TBS pipeline and the naive reference pipeline
/// return bit-identical regions for the 23:55 + 10 min query.
#[test]
fn sqmb_tbs_matches_reference_across_midnight() {
    let f = fixture();
    let start = f.network.nearest_segment(&f.center).unwrap().0;
    for prob in [0.25, 0.5, 1.0] {
        let bounds = sqmb(
            &f.con,
            f.network.num_segments(),
            start,
            LATE_START,
            DURATION,
        );
        let core = VerifierCore::new(&f.st, start, LATE_START, DURATION).unwrap();
        let optimized = trace_back_search(&f.network, &core, &bounds, prob).unwrap();
        let naive = naive_trace_back_search(
            &f.network, &f.st, &bounds, start, LATE_START, DURATION, prob,
        )
        .unwrap();
        assert_eq!(
            optimized.region.segments, naive.segments,
            "cross-midnight TBS mismatch at prob={prob}"
        );
    }
}

/// Optimized and reference exhaustive search agree across midnight too.
#[test]
fn es_matches_reference_across_midnight() {
    let f = fixture();
    let start = f.network.nearest_segment(&f.center).unwrap().0;
    let q = SQuery {
        location: f.center,
        start_time_s: LATE_START,
        duration_s: DURATION,
        prob: 0.25,
    };
    let optimized = exhaustive_search(&f.network, &f.st, &q, start).unwrap();
    let naive = naive_exhaustive_search(&f.network, &f.st, &q, start).unwrap();
    assert_eq!(
        optimized.region.segments, naive.segments,
        "cross-midnight ES mismatch"
    );
}

/// The wrapped window is genuinely *larger* than the clamped one: verifying
/// with the full 10-minute wrap must never yield a lower probability than
/// stopping at midnight, and must yield a strictly higher one somewhere.
#[test]
fn wrap_extends_the_clamped_window() {
    let f = fixture();
    let start = f.network.nearest_segment(&f.center).unwrap().0;
    // Clamped semantics == a query whose duration stops exactly at midnight.
    let clamped_duration = streach_traj::SECONDS_PER_DAY - LATE_START;
    let wrapped = VerifierCore::new(&f.st, start, LATE_START, DURATION).unwrap();
    let clamped = VerifierCore::new(&f.st, start, LATE_START, clamped_duration).unwrap();
    let mut s1 = VerifierScratch::new();
    let mut s2 = VerifierScratch::new();
    let mut strictly_higher = 0usize;
    for seg in f.network.segment_ids() {
        let pw = wrapped.probability(&mut s1, seg).unwrap();
        let pc = clamped.probability(&mut s2, seg).unwrap();
        assert!(
            pw >= pc,
            "wrap lowered the probability of {seg}: {pw} < {pc}"
        );
        if pw > pc {
            strictly_higher += 1;
        }
    }
    assert!(
        strictly_higher > 0,
        "the post-midnight slots must contribute to at least one segment"
    );
}
