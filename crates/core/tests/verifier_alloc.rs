//! Proves the acceptance criterion of the zero-allocation hot path: after
//! warm-up, `VerifierCore::probability` performs **zero heap allocations**
//! per call.
//!
//! A counting global allocator tallies every `alloc`/`realloc` while armed.
//! The test warms the verifier (scratch buffers grow to their high-water
//! mark, the buffer pool caches every posting page the query touches), then
//! re-verifies the same segments with the counter armed and asserts that no
//! allocation happened.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use streach_core::config::IndexConfig;
use streach_core::query::verifier::{VerifierCore, VerifierScratch};
use streach_core::st_index::StIndex;
use streach_roadnet::{GeneratorConfig, SegmentId, SyntheticCity};
use streach_traj::{FleetConfig, TrajectoryDataset};

struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn warm_probability_calls_do_not_allocate() {
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 20,
            num_days: 5,
            ..FleetConfig::tiny()
        },
    );
    // Zero simulated latency, and a pool big enough that every posting page
    // the query touches stays resident once read.
    let config = IndexConfig {
        read_latency_us: 0,
        pool_pages: 16_384,
        ..Default::default()
    };
    let st = StIndex::build(network.clone(), &dataset, &config);

    // A busy daytime start segment and a spread of candidates: its
    // successors (hot postings), a far corner (cold/absent postings), and a
    // sweep of arbitrary segments.
    let traj = &dataset.trajectories()[0];
    let start = traj.visits[0];
    let core = VerifierCore::new(&st, start.segment, start.enter_time_s, 900).unwrap();
    assert!(
        core.active_days() > 0,
        "start segment must be active for a meaningful test"
    );

    let candidates: Vec<SegmentId> = network.segment_ids().step_by(7).take(120).collect();
    let mut scratch = VerifierScratch::new();

    // Warm-up: grow every scratch buffer to its high-water mark and pull the
    // touched posting pages into the buffer pool.
    let warm: Vec<f64> = candidates
        .iter()
        .map(|&seg| core.probability(&mut scratch, seg).unwrap())
        .collect();
    assert!(
        warm.iter().any(|&p| p > 0.0),
        "some candidate must be reachable"
    );

    // Measured pass: identical calls, armed allocator.
    ALLOCATIONS.store(0, Ordering::SeqCst);
    let mut measured: Vec<f64> = Vec::with_capacity(candidates.len());
    for &seg in &candidates {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        let p = core.probability(&mut scratch, seg).unwrap();
        ARMED.store(false, Ordering::SeqCst);
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        if after != before {
            eprintln!("segment {seg}: {} allocations (p = {p})", after - before);
        }
        measured.push(p);
    }

    assert_eq!(warm, measured, "warm-up and measured passes must agree");
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        allocations,
        0,
        "warm probability() calls must not allocate ({} allocations over {} calls)",
        allocations,
        candidates.len()
    );
}
