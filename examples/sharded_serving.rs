//! Sharded serving: partition the road network into spatial shards, serve
//! queries through a scatter-gather router, ship the leaders' WALs to read
//! replicas in the background with a lag SLO, and fail a shard over to its
//! replica with a fenced promotion — the deposed leader's next write fails
//! typed — with every answer bit-identical to a single unsharded engine.
//!
//! Run with:
//! ```text
//! cargo run --release --example sharded_serving
//! ```

use std::sync::Arc;

use streach::prelude::*;

const NUM_SHARDS: u16 = 3;

fn main() {
    let root = std::env::temp_dir().join("streach-example-sharded");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create working dir");

    // --- Offline: one fleet history, one spatial partition ---------------
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);
    let base_days = 3u16;
    let live_days = 1u16;
    let full = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 25,
            num_days: base_days + live_days,
            day_start_s: 8 * 3600,
            day_end_s: 14 * 3600,
            ..FleetConfig::default()
        },
    );
    let base = TrajectoryDataset::from_matched(
        full.trajectories()
            .iter()
            .filter(|t| t.date < base_days)
            .cloned()
            .collect(),
        full.num_taxis(),
        base_days,
    );

    // The deterministic k-d cut over segment midpoints: every segment's
    // postings live on exactly one shard; speed statistics stay global.
    let map = Arc::new(ShardMap::partition(&network, NUM_SHARDS));
    for shard_id in 0..NUM_SHARDS {
        println!(
            "shard {shard_id}: owns {} of {} segments",
            map.segments_of(shard_id).len(),
            network.num_segments()
        );
    }

    // The unsharded baseline every sharded answer is compared against.
    let single = streach::core::EngineBuilder::new(network.clone(), &base).build();

    // --- Shard leaders: build, persist self-contained, go live -----------
    // Each leader indexes the full history but keeps only its owned
    // postings; the self-contained snapshot (network embedded) is the
    // artifact a replica host bootstraps from, with no side channel.
    let mut leaders = Vec::new();
    let mut homes = Vec::new();
    for shard_id in 0..NUM_SHARDS {
        let home = root.join(format!("shard{shard_id}"));
        let leader = Arc::new(
            streach::core::EngineBuilder::new(network.clone(), &base)
                .shard(map.clone(), shard_id)
                .build(),
        );
        leader
            .save_snapshot_self_contained(&home)
            .expect("save shard snapshot");
        leader
            .attach_wal(home.join("ingest.wal"))
            .expect("attach shard WAL");
        leaders.push(leader);
        homes.push(home);
    }

    // --- Replicas: bootstrap from shipped artifacts alone -----------------
    // Copy the snapshot directory (what an object store or rsync would
    // move), open it standalone, and register it for WAL shipping.
    let mut sets = Vec::new();
    for shard_id in 0..NUM_SHARDS as usize {
        let replica_home = root.join(format!("shard{shard_id}-replica"));
        copy_dir(&homes[shard_id], &replica_home);
        let _ = std::fs::remove_file(replica_home.join("ingest.wal"));
        let replica = Arc::new(
            ReachabilityEngine::open_snapshot_standalone(&replica_home)
                .expect("bootstrap replica from snapshot"),
        );
        let set = Arc::new(ReplicaSet::new(
            leaders[shard_id].clone(),
            homes[shard_id].join("ingest.wal"),
        ));
        set.add_replica(replica, replica_home.join("follower.wal"))
            .expect("register replica");
        sets.push(set);
    }

    // --- The router: scatter-gather over leaders + replicas ---------------
    let mut router = ShardedEngine::new(map.clone(), leaders.clone());
    for (shard_id, set) in sets.iter().enumerate() {
        router.add_replica(shard_id as u16, set.replica(0));
    }

    let query = SQuery {
        location: center,
        start_time_s: 9 * 3600,
        duration_s: 600,
        prob: 0.25,
    };
    let want = single.s_query(&query, Algorithm::SqmbTbs);
    let got = router
        .try_s_query(&query, Algorithm::SqmbTbs)
        .expect("sharded query");
    assert_eq!(want.region.segments, got.region.segments);
    let start = single.try_locate(&query.location).expect("locate");
    println!(
        "query at shard {}: {} reachable segments, {:.1} km — bit-identical to the single engine",
        map.shard_of(start),
        got.region.len(),
        got.region.total_length_km
    );
    let spanned: std::collections::BTreeSet<u16> = got
        .region
        .segments
        .iter()
        .map(|&s| map.shard_of(s))
        .collect();
    println!(
        "the reachable annulus straddles {} shard(s): {spanned:?}",
        spanned.len()
    );

    // --- Live ingest, shipped to the replicas in the background -----------
    // One ReplicationController per replica set owns ship() on a cadence
    // and watches per-replica lag against the configured SLO; run_now() is
    // the deterministic barrier this example uses instead of sleeping.
    let controllers: Vec<ReplicationController> = sets
        .iter()
        .map(|set| {
            ReplicationController::spawn(
                set.clone(),
                ReplicationConfig {
                    lag_slo_records: 256,
                    ..ReplicationConfig::default()
                },
            )
        })
        .collect();
    let live: Vec<Vec<TrajPoint>> = full
        .trajectories()
        .iter()
        .filter(|t| t.date >= base_days)
        .map(|t| points_of(t).collect())
        .collect();
    for batch in &live {
        single.ingest(batch).expect("single ingest");
        router.ingest(batch).expect("sharded ingest");
    }
    let mut shipped = 0;
    for (set, ctl) in sets.iter().zip(&controllers) {
        ctl.run_now();
        shipped += ctl.stats().records_shipped;
        assert!(set.converged(), "replica must converge after shipping");
        assert_eq!(ctl.lag(), vec![0], "lag observable through the controller");
    }
    println!(
        "ingested day {base_days} at every leader; background shipping moved {shipped} WAL records; all replicas converged (lag 0)"
    );

    // Replica-first reads: query I/O moves off the ingest path, answers
    // stay bit-identical because converged replicas hold the same bytes.
    router.set_read_preference(ReadPreference::ReplicaFirst);
    let want = single.s_query(&query, Algorithm::SqmbTbs);
    let got = router
        .try_s_query(&query, Algorithm::SqmbTbs)
        .expect("replica read");
    assert_eq!(want.region.segments, got.region.segments);
    println!(
        "replica-first read after ingest: {} segments, {:.1} km — still bit-identical",
        got.region.len(),
        got.region.total_length_km
    );

    // --- Checkpoint with ship-before-rotate -------------------------------
    for (shard_id, set) in sets.iter().enumerate() {
        set.checkpoint_leader(&homes[shard_id])
            .expect("checkpoint leader");
    }
    println!("checkpointed every leader (tail shipped before the WAL rotated)");

    // --- Failover: promote shard 0's replica — fenced ----------------------
    // The promotion bumps the fence epoch, persists it with the promoted
    // engine, and fences the deposed leader's WAL *before* the new leader
    // accepts a write: even a partitioned-but-alive old leader can no
    // longer ack anything.
    let (promoted, attach) = sets[0].promote(0).expect("promote replica");
    println!(
        "shard 0 leader lost: promoted its replica (replayed {} shipped records)",
        attach.records_replayed
    );
    router.install_leader(0, promoted.clone());
    router
        .ingest(&live[0])
        .expect("fleet accepts writes through the promoted leader");
    let fenced = leaders[0]
        .ingest(&live[0])
        .expect_err("deposed leader must be fenced");
    println!("deposed leader's next ingest failed typed: {fenced}");
    single.ingest(&live[0]).expect("reference ingest");
    // The retired set's controller observes the fence and parks.
    controllers[0].run_now();
    let events = controllers[0].take_events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ReplicationEvent::Fenced { .. })),
        "controller surfaces the fence as a typed event: {events:?}"
    );

    router.set_read_preference(ReadPreference::Leader);
    let want = single.s_query(&query, Algorithm::SqmbTbs);
    let got = router
        .try_s_query(&query, Algorithm::SqmbTbs)
        .expect("query after failover");
    assert_eq!(want.region.segments, got.region.segments);
    println!(
        "after failover: {} segments, {:.1} km — bit-identical, no data lost",
        got.region.len(),
        got.region.total_length_km
    );

    drop(controllers);
    std::fs::remove_dir_all(&root).ok();
}

/// Copies a snapshot directory file by file — standing in for the object
/// store or rsync that ships artifacts between hosts.
fn copy_dir(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).expect("create replica dir");
    for entry in std::fs::read_dir(src).expect("read snapshot dir").flatten() {
        if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy artifact");
        }
    }
}
