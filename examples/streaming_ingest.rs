//! Streaming ingest: open a snapshot, keep absorbing the fleet's new
//! trajectory points through a write-ahead log, checkpoint incrementally,
//! and reopen after a "crash" without losing an acknowledged point.
//!
//! Run with:
//! ```text
//! cargo run --release --example streaming_ingest
//! ```

use std::sync::Arc;
use std::time::Instant;

use streach::prelude::*;
use streach::traj::points_of;

fn main() {
    let snapshot_dir = std::env::temp_dir().join("streach-example-streaming");
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    let wal_path = snapshot_dir.join("ingest.wal");

    // --- Offline: build and persist the engine over the historical data --
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);
    let base_days = 4u16;
    let live_days = 2u16;
    // One simulation so trajectory IDs stay consistent; the last `live_days`
    // stand in for data that has not arrived yet at build time.
    let full = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 25,
            num_days: base_days + live_days,
            day_start_s: 8 * 3600,
            day_end_s: 14 * 3600,
            ..FleetConfig::default()
        },
    );
    let base = TrajectoryDataset::from_matched(
        full.trajectories()
            .iter()
            .filter(|t| t.date < base_days)
            .cloned()
            .collect(),
        full.num_taxis(),
        base_days,
    );
    streach::core::EngineBuilder::new(network.clone(), &base)
        .save_snapshot(&snapshot_dir)
        .expect("save snapshot");
    println!(
        "offline build over {} days -> {}",
        base_days,
        snapshot_dir.display()
    );

    // --- Serving process: open the snapshot, attach the WAL, go live -----
    let engine =
        ReachabilityEngine::open_snapshot(&snapshot_dir, network.clone()).expect("open snapshot");
    engine.attach_wal(&wal_path).expect("attach WAL");

    let query = SQuery {
        location: center,
        start_time_s: 9 * 3600,
        duration_s: 600,
        prob: 0.25,
    };
    let before = engine.s_query(&query, Algorithm::SqmbTbs);
    println!(
        "before ingest:  m = {} days, {} reachable segments, {:.1} km",
        engine.st_index().num_days(),
        before.region.len(),
        before.region.total_length_km
    );

    // The "live feed": day `base_days` arrives trajectory by trajectory.
    let live: Vec<&streach::traj::MatchedTrajectory> = full
        .trajectories()
        .iter()
        .filter(|t| t.date >= base_days)
        .collect();
    let split = live.len() / 2;
    let t0 = Instant::now();
    let mut points = 0usize;
    for traj in &live[..split] {
        let batch: Vec<TrajPoint> = points_of(traj).collect();
        points += engine.ingest(&batch).expect("ingest").points;
    }
    println!(
        "ingested {} points ({} trajectories) through the WAL in {:.1} ms",
        points,
        split,
        t0.elapsed().as_secs_f64() * 1e3
    );

    let mid = engine.s_query(&query, Algorithm::SqmbTbs);
    println!(
        "after ingest:   m = {} days, {} reachable segments, {:.1} km (base + delta, no rebuild)",
        engine.st_index().num_days(),
        mid.region.len(),
        mid.region.total_length_km
    );

    // Checkpoint: chains the delta onto the snapshot and rotates the WAL.
    let t1 = Instant::now();
    engine
        .save_incremental_snapshot(&snapshot_dir)
        .expect("incremental checkpoint");
    println!(
        "incremental checkpoint in {:.1} ms (base page file untouched)",
        t1.elapsed().as_secs_f64() * 1e3
    );

    // More live data arrives... and the process dies without checkpointing.
    for traj in &live[split..] {
        let batch: Vec<TrajPoint> = points_of(traj).collect();
        engine.ingest(&batch).expect("ingest");
    }
    let expected = engine.s_query(&query, Algorithm::SqmbTbs);
    drop(engine); // <- crash: everything after the checkpoint is WAL-only

    // --- Recovery: reopen the checkpoint, replay the WAL tail ------------
    let recovered = ReachabilityEngine::open_snapshot(&snapshot_dir, network.clone())
        .expect("reopen checkpoint");
    let attach = recovered.attach_wal(&wal_path).expect("replay WAL");
    println!(
        "recovery: replayed {} WAL records ({} points), {} torn bytes discarded",
        attach.records_replayed, attach.points_replayed, attach.truncated_bytes
    );
    let after = recovered.s_query(&query, Algorithm::SqmbTbs);
    assert_eq!(
        expected.region.segments, after.region.segments,
        "recovered engine must answer exactly like the pre-crash engine"
    );
    println!(
        "after recovery: m = {} days, {} reachable segments, {:.1} km (bit-identical to pre-crash)",
        recovered.st_index().num_days(),
        after.region.len(),
        after.region.total_length_km
    );

    // --- Maintenance: fold the delta into a new sealed base --------------
    let t2 = Instant::now();
    let folded = recovered.compact().expect("compact");
    println!(
        "compacted {} delta lists ({} bytes) into a sealed base in {:.1} ms",
        folded.delta_lists,
        folded.delta_bytes,
        t2.elapsed().as_secs_f64() * 1e3
    );
    let compacted = recovered.s_query(&query, Algorithm::SqmbTbs);
    assert_eq!(compacted.region.segments, after.region.segments);
    println!("queries unchanged after compaction — done");

    std::fs::remove_dir_all(&snapshot_dir).ok();
}
