//! Business coverage analysis with a multi-location query.
//!
//! A chain (think UPS or McDonald's, as in the paper's introduction) has
//! several branches and wants the overall spatial coverage reachable from
//! any branch within 20 minutes. This is exactly a multi-location ST
//! reachability query; the example compares answering it as repeated
//! single-location queries versus the MQMB algorithm.
//!
//! Run with:
//! ```text
//! cargo run --release --example business_coverage
//! ```

use std::sync::Arc;

use streach::core::query::MQueryAlgorithm;
use streach::prelude::*;

fn main() {
    let city = SyntheticCity::generate(GeneratorConfig::medium());
    let center = city.central_point();
    let network = Arc::new(city.network);

    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 80,
            num_days: 12,
            ..FleetConfig::default()
        },
    );
    let engine = EngineBuilder::new(network.clone(), &dataset).build();

    // Five branch locations spread across the city.
    let branches = vec![
        center,
        center.offset_m(2500.0, 1500.0),
        center.offset_m(-2800.0, 800.0),
        center.offset_m(1000.0, -2600.0),
        center.offset_m(-1500.0, -1800.0),
    ];

    let query = MQuery {
        locations: branches.clone(),
        start_time_s: 10 * 3600,
        duration_s: 20 * 60,
        prob: 0.2,
    };
    engine.warm_con_index(query.start_time_s, query.duration_s);

    println!(
        "business coverage of {} branches (T = 10:00, L = 20 min, Prob = 20%):\n",
        branches.len()
    );
    for (name, algo) in [
        (
            "repeated s-queries (SQMB+TBS x n)",
            MQueryAlgorithm::RepeatedSQuery,
        ),
        ("m-query (MQMB+TBS)", MQueryAlgorithm::MqmbTbs),
    ] {
        let outcome = engine.m_query(&query, algo);
        println!(
            "{name:<36} -> {:>5} segments, {:>8.2} km covered, {:>9.1} ms, {:>6} verifications",
            outcome.region.len(),
            outcome.region.total_length_km,
            outcome.stats.running_time_ms(),
            outcome.stats.segments_verified,
        );
    }

    // Per-branch breakdown (Fig. 4.9 shows the union vs the three parts).
    println!("\nper-branch coverage:");
    for (i, &branch) in branches.iter().enumerate() {
        let outcome = engine.s_query(
            &SQuery {
                location: branch,
                start_time_s: query.start_time_s,
                duration_s: query.duration_s,
                prob: query.prob,
            },
            Algorithm::SqmbTbs,
        );
        println!(
            "  branch {:>2}: {:>5} segments, {:>8.2} km",
            i + 1,
            outcome.region.len(),
            outcome.region.total_length_km
        );
    }

    let union = engine.m_query(&query, MQueryAlgorithm::MqmbTbs);
    let geojson = region_to_geojson(&network, &union.region);
    let path = std::env::temp_dir().join("streach_business_coverage.geojson");
    std::fs::write(&path, geojson).expect("write GeoJSON");
    println!("\nwrote union coverage to {}", path.display());
}
