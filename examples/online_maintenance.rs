//! Online maintenance under load: a serving engine ingests a live feed
//! while background maintenance auto-checkpoints and compacts — queries
//! never stop, a crash loses nothing.
//!
//! The walkthrough: open a snapshot → attach the WAL → spawn the
//! [`MaintenanceController`] → ingest under concurrent query load (the
//! delta heap crosses `IndexConfig::auto_checkpoint_bytes`, so checkpoints
//! fire on their own; the delta/base ratio trigger folds the delta into a
//! fresh sealed base with one atomic pointer swap) → "crash" → recover from
//! the auto-checkpoint plus the WAL tail, bit-identically.
//!
//! Run with:
//! ```text
//! cargo run --release --example online_maintenance
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use streach::core::{MaintenanceConfig, MaintenanceController};
use streach::prelude::*;
use streach::traj::points_of;

fn main() {
    let snapshot_dir = std::env::temp_dir().join("streach-example-maintenance");
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    let wal_path = snapshot_dir.join("ingest.wal");

    // --- Offline: build and persist the engine over the historical data --
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);
    let base_days = 4u16;
    let live_days = 2u16;
    let full = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 25,
            num_days: base_days + live_days,
            day_start_s: 8 * 3600,
            day_end_s: 14 * 3600,
            ..FleetConfig::default()
        },
    );
    let base = TrajectoryDataset::from_matched(
        full.trajectories()
            .iter()
            .filter(|t| t.date < base_days)
            .cloned()
            .collect(),
        full.num_taxis(),
        base_days,
    );
    streach::core::EngineBuilder::new(network.clone(), &base)
        .index_config(IndexConfig {
            // A small threshold so the walkthrough visibly auto-checkpoints.
            auto_checkpoint_bytes: 64 * 1024,
            ..IndexConfig::default()
        })
        .save_snapshot(&snapshot_dir)
        .expect("save snapshot");
    println!(
        "offline build over {base_days} days -> {}",
        snapshot_dir.display()
    );

    // --- Serving: open, attach the WAL, start background maintenance -----
    let engine = Arc::new(
        ReachabilityEngine::open_snapshot(&snapshot_dir, network.clone()).expect("open snapshot"),
    );
    engine.attach_wal(&wal_path).expect("attach WAL");
    let controller = MaintenanceController::spawn(
        Arc::clone(&engine),
        &snapshot_dir,
        MaintenanceConfig {
            // Fold the delta once it reaches 30% of the base.
            compact_delta_ratio: Some(0.3),
            ..MaintenanceConfig::default()
        },
    );

    let query = SQuery {
        location: center,
        start_time_s: 9 * 3600,
        duration_s: 600,
        prob: 0.25,
    };
    let before = engine.s_query(&query, Algorithm::SqmbTbs);
    println!(
        "before ingest:  m = {} days, {} reachable segments, {:.1} km",
        engine.st_index().num_days(),
        before.region.len(),
        before.region.total_length_km
    );

    // --- The live feed, under concurrent query load ----------------------
    // Two query threads keep asking while the writer ingests; background
    // maintenance races both. Queries never block on a checkpoint or a
    // compaction — the sealed base swaps under them atomically.
    let live: Vec<&streach::traj::MatchedTrajectory> = full
        .trajectories()
        .iter()
        .filter(|t| t.date >= base_days)
        .collect();
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let (points, queries_served) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let stop = &stop;
                let query = &query;
                scope.spawn(move || {
                    let mut served = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let _ = engine.s_query(query, Algorithm::SqmbTbs);
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        let mut points = 0usize;
        for traj in &live {
            let batch: Vec<TrajPoint> = points_of(traj).collect();
            points += engine.ingest(&batch).expect("ingest").points;
        }
        // One last deterministic pass so the walkthrough's counters are
        // populated before we report them.
        controller.run_now();
        stop.store(true, Ordering::Relaxed);
        let served: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        (points, served)
    });
    let stats = controller.stats();
    println!(
        "ingested {points} points in {:.1} ms while serving {queries_served} queries",
        t0.elapsed().as_secs_f64() * 1e3
    );
    println!(
        "background maintenance: {} auto-checkpoints, {} compactions, {} errors",
        stats.checkpoints, stats.compactions, stats.errors
    );
    assert!(
        stats.checkpoints > 0,
        "the delta must have crossed the threshold"
    );
    assert!(stats.compactions > 0, "the ratio trigger must have fired");
    println!(
        "delta after maintenance: {:?} (compaction swapped in a fresh sealed base)",
        engine.st_index().delta_stats()
    );

    let expected = engine.s_query(&query, Algorithm::SqmbTbs);
    println!(
        "after ingest:   m = {} days, {} reachable segments, {:.1} km",
        engine.st_index().num_days(),
        expected.region.len(),
        expected.region.total_length_km
    );

    // --- Crash: the process dies between checkpoints ----------------------
    let errors = controller.shutdown();
    assert!(errors.is_empty(), "maintenance errors: {errors:?}");
    drop(engine);

    // --- Recovery: auto-checkpoint + WAL tail ----------------------------
    let recovered = ReachabilityEngine::open_snapshot(&snapshot_dir, network.clone())
        .expect("reopen auto-checkpoint");
    let attach = recovered.attach_wal(&wal_path).expect("replay WAL tail");
    println!(
        "recovery: replayed {} WAL records ({} points) on top of the last auto-checkpoint",
        attach.records_replayed, attach.points_replayed
    );
    let after = recovered.s_query(&query, Algorithm::SqmbTbs);
    assert_eq!(
        expected.region.segments, after.region.segments,
        "recovered engine must answer exactly like the pre-crash engine"
    );
    println!(
        "after recovery: m = {} days, {} reachable segments, {:.1} km (bit-identical) — done",
        recovered.st_index().num_days(),
        after.region.len(),
        after.region.total_length_km
    );

    std::fs::remove_dir_all(&snapshot_dir).ok();
}
