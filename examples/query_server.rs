//! Serving front end: many concurrent clients submit s-queries through a
//! [`QueryServer`], which folds queries sharing an (origin, slot window)
//! into **one MQMB bounding pass** (cross-user coalescing), serves repeats
//! from an ingest-invalidated **result cache**, and stays bit-identical to
//! the serial engine path throughout — including across a live ingest that
//! invalidates exactly the affected cache entries.
//!
//! Run with:
//! ```text
//! cargo run --release --example query_server
//! ```

use std::sync::Arc;

use streach::prelude::*;

fn main() {
    // --- An engine over a simulated fleet history -------------------------
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);
    let base_days = 3u16;
    let full = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 25,
            num_days: base_days + 1,
            day_start_s: 8 * 3600,
            day_end_s: 14 * 3600,
            ..FleetConfig::default()
        },
    );
    let base = TrajectoryDataset::from_matched(
        full.trajectories()
            .iter()
            .filter(|t| t.date < base_days)
            .cloned()
            .collect(),
        full.num_taxis(),
        base_days,
    );
    let live_batch: Vec<TrajPoint> = full
        .trajectories()
        .iter()
        .filter(|t| t.date >= base_days)
        .flat_map(|t| points_of(t).collect::<Vec<_>>())
        .collect();
    let engine = Arc::new(streach::core::EngineBuilder::new(network.clone(), &base).build());

    // --- Start the server over the engine ---------------------------------
    // Workers drain a bounded submission queue in batches; inside a batch,
    // queries sharing (origin segment, slot window) ride one bounding pass
    // and fan out only for verification. The result cache is invalidated by
    // the exact (slot, segment) pairs each ingest batch touches.
    let server = QueryServer::start(
        Arc::clone(&engine),
        ServeConfig {
            workers: 2,
            queue_depth: 128,
            coalesce: true,
            cache_capacity: 1024,
            ..Default::default()
        },
    );

    // --- A burst of concurrent "users" ------------------------------------
    // Three users ask about the same origin and window with different
    // probability thresholds (one shared bounding pass, three
    // verifications), plus one distinct query.
    let base_query = SQuery {
        location: center,
        start_time_s: 9 * 3600,
        duration_s: 600,
        prob: 0.25,
    };
    let tickets: Vec<_> = [0.25, 0.4, 0.6]
        .into_iter()
        .map(|prob| server.submit(SQuery { prob, ..base_query }, Algorithm::SqmbTbs))
        .chain(std::iter::once(server.submit(
            SQuery {
                location: center.offset_m(800.0, -500.0),
                ..base_query
            },
            Algorithm::SqmbTbs,
        )))
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let outcome = ticket.wait().expect("burst query");
        println!(
            "burst query #{i}: {} segments, {:.1} km reachable",
            outcome.region.segments.len(),
            outcome.region.total_length_km
        );
    }

    // The same query again: now a cache hit (no bounding, no verification).
    let cached = server
        .query(base_query, Algorithm::SqmbTbs)
        .expect("cached query");
    let stats = server.stats();
    println!(
        "after burst + repeat: {} coalesced, {} cache hits, {} misses",
        stats.coalesced, stats.cache_hits, stats.cache_misses
    );
    assert!(stats.cache_hits > 0, "the repeat must be served from cache");

    // --- Live ingest invalidates, the server never serves stale -----------
    // The serial path is the ground truth; after ingesting a new fleet day
    // the server's answer must track it (the ingest notified the cache,
    // which dropped every affected entry — here the day count rose, so all
    // of them).
    engine.ingest(&live_batch).expect("live ingest");
    let fresh = server
        .query(base_query, Algorithm::SqmbTbs)
        .expect("post-ingest query");
    let serial = engine
        .try_s_query(&base_query, Algorithm::SqmbTbs)
        .expect("serial reference");
    assert_eq!(
        fresh.region.segments, serial.region.segments,
        "the served answer must match the serial engine after ingest"
    );
    let changed = fresh.region.segments != cached.region.segments
        || fresh.region.total_length_km != cached.region.total_length_km;
    println!(
        "post-ingest answer matches the serial engine (answer changed: {changed}); \
         cache flushes: {}",
        server.stats().cache_flushes
    );

    server.shutdown();
    println!("done");
}
