//! Location-based advertising (Fig. 1.2 of the paper).
//!
//! A shopping mall wants to know which streets are within a 15-minute reach
//! of its entrance at different times of day, so it can decide where (and
//! when) to distribute coupons. The reachable region around 1 pm is visibly
//! larger than around 6 pm because of the evening rush hour.
//!
//! Run with:
//! ```text
//! cargo run --release --example location_advertising
//! ```

use std::sync::Arc;

use streach::core::time::format_hhmm;
use streach::prelude::*;

fn main() {
    let city = SyntheticCity::generate(GeneratorConfig::medium());
    let mall = city.central_point();
    let network = Arc::new(city.network);

    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 80,
            num_days: 12,
            ..FleetConfig::default()
        },
    );
    let engine = EngineBuilder::new(network.clone(), &dataset).build();

    println!("reachable region around the mall (L = 15 min, Prob = 20%):\n");
    println!(
        "{:<12} {:>10} {:>14} {:>12}",
        "start time", "segments", "road km", "runtime ms"
    );

    let mut results = Vec::new();
    for hour in [1u32, 6, 10, 13, 18, 21] {
        let query = SQuery {
            location: mall,
            start_time_s: hour * 3600,
            duration_s: 15 * 60,
            prob: 0.2,
        };
        engine.warm_con_index(query.start_time_s, query.duration_s);
        let outcome = engine.s_query(&query, Algorithm::SqmbTbs);
        println!(
            "{:<12} {:>10} {:>14.2} {:>12.1}",
            format_hhmm(query.start_time_s),
            outcome.region.len(),
            outcome.region.total_length_km,
            outcome.stats.running_time_ms()
        );
        results.push((hour, outcome.region.total_length_km));

        // Dump one GeoJSON per start time so the shrinking rush-hour region
        // can be inspected on a map.
        let geojson = region_to_geojson(&network, &outcome.region);
        let path = std::env::temp_dir().join(format!("streach_advertising_{hour:02}h.geojson"));
        std::fs::write(&path, geojson).expect("write GeoJSON");
    }

    // The headline observation of Fig. 1.2: the 13:00 region beats the 18:00
    // (rush hour) region.
    let at = |h: u32| {
        results
            .iter()
            .find(|(hour, _)| *hour == h)
            .map(|(_, km)| *km)
            .unwrap_or(0.0)
    };
    println!(
        "\n13:00 reach = {:.1} km vs 18:00 reach = {:.1} km  ({}).",
        at(13),
        at(18),
        if at(13) > at(18) {
            "rush hour shrinks the coupon zone"
        } else {
            "no rush-hour effect detected"
        }
    );
    println!(
        "GeoJSON files written to {}",
        std::env::temp_dir().display()
    );
}
