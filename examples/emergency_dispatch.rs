//! Emergency dispatching analysis.
//!
//! Dispatchers want to know, for a set of candidate depot locations, which
//! one can reach the largest share of the city within a fixed response
//! budget at a given time of day — and how much that coverage degrades at
//! rush hour. The example ranks candidate depots by their 10-minute
//! Prob-reachable road length at 03:00 (free flow) and 08:00 (morning peak).
//!
//! Run with:
//! ```text
//! cargo run --release --example emergency_dispatch
//! ```

use std::sync::Arc;

use streach::core::time::format_hhmm;
use streach::prelude::*;

fn main() {
    let city = SyntheticCity::generate(GeneratorConfig::medium());
    let center = city.central_point();
    let network = Arc::new(city.network);

    // Around-the-clock fleet so night-time reachability is observable.
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 90,
            num_days: 12,
            day_start_s: 0,
            day_end_s: 86_400,
            ..FleetConfig::default()
        },
    );
    let engine = EngineBuilder::new(network.clone(), &dataset).build();

    let candidates = vec![
        ("central depot", center),
        ("north depot", center.offset_m(0.0, 3500.0)),
        ("south-west depot", center.offset_m(-3200.0, -2800.0)),
        ("east depot", center.offset_m(3800.0, 500.0)),
    ];

    let total_km = network.total_length_km();
    println!("candidate depots, 10-minute response coverage (Prob = 20%):\n");
    println!(
        "{:<18} {:>14} {:>14} {:>16}",
        "depot", "03:00 cover km", "08:00 cover km", "rush-hour loss %"
    );

    let mut best: Option<(&str, f64)> = None;
    for (name, location) in &candidates {
        let mut coverage = [0.0f64; 2];
        for (i, hour) in [3u32, 8].into_iter().enumerate() {
            let query = SQuery {
                location: *location,
                start_time_s: hour * 3600,
                duration_s: 10 * 60,
                prob: 0.2,
            };
            engine.warm_con_index(query.start_time_s, query.duration_s);
            let outcome = engine.s_query(&query, Algorithm::SqmbTbs);
            coverage[i] = outcome.region.total_length_km;
        }
        let loss = if coverage[0] > 0.0 {
            (1.0 - coverage[1] / coverage[0]) * 100.0
        } else {
            0.0
        };
        println!(
            "{:<18} {:>14.2} {:>14.2} {:>16.1}",
            name, coverage[0], coverage[1], loss
        );
        if best.map(|(_, km)| coverage[1] > km).unwrap_or(true) {
            best = Some((name, coverage[1]));
        }
    }

    if let Some((name, km)) = best {
        println!(
            "\nbest rush-hour coverage: {name} ({km:.1} km of {total_km:.0} km total, at {})",
            format_hhmm(8 * 3600)
        );
    }
}
