//! Standing reachability queries: register once, get told when the
//! answer changes — instead of polling `s_query` after every batch.
//!
//! The walkthrough: open a snapshot → attach the WAL → spawn the
//! [`SubscriptionManager`] → register a region watch and a
//! threshold alert → ingest a live fleet-day (only subscriptions whose
//! read footprint the batch touched re-evaluate; events carry the old
//! and new region plus the trigger verdict) → ingest a slot-disjoint
//! night batch (zero re-evaluations — the footprint intersection does
//! all the work) → "crash" → reopen from the snapshot + WAL tail and
//! re-register: the first evaluation reproduces the pre-crash region
//! bit-for-bit.
//!
//! Run with:
//! ```text
//! cargo run --release --example standing_queries
//! ```

use std::sync::Arc;
use std::time::Duration;

use streach::core::subscribe::{SubscribeConfig, SubscriptionManager, Trigger};
use streach::prelude::*;
use streach::traj::points_of;

fn main() {
    let snapshot_dir = std::env::temp_dir().join("streach-example-subscriptions");
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    let wal_path = snapshot_dir.join("ingest.wal");

    // --- Offline: build and persist the engine over the historical data --
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);
    let base_days = 4u16;
    let full = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 25,
            num_days: base_days + 1,
            day_start_s: 8 * 3600,
            day_end_s: 14 * 3600,
            ..FleetConfig::default()
        },
    );
    let base = TrajectoryDataset::from_matched(
        full.trajectories()
            .iter()
            .filter(|t| t.date < base_days)
            .cloned()
            .collect(),
        full.num_taxis(),
        base_days,
    );
    let live_day: Vec<TrajPoint> = full
        .trajectories()
        .iter()
        .filter(|t| t.date >= base_days)
        .flat_map(|t| points_of(t).collect::<Vec<_>>())
        .collect();
    streach::core::EngineBuilder::new(network.clone(), &base)
        .save_snapshot(&snapshot_dir)
        .expect("save snapshot");
    println!(
        "offline build over {base_days} days -> {}",
        snapshot_dir.display()
    );

    // The standing question: what is reachable from the city centre at
    // 09:00 within 10 minutes with probability >= 0.25?
    let watch = SQuery {
        location: center,
        start_time_s: 9 * 3600,
        duration_s: 600,
        prob: 0.25,
    };

    // A shadow engine tells us where the live day moves each candidate
    // answer, so we can place the alert on a query whose region *shrinks*
    // (a fresh date raises the day count — every probability's
    // denominator — so coverage that the new day does not repeat dilutes)
    // with a threshold provably between the two lengths: the alert then
    // fires exactly on the batch that crosses it.
    let shadow =
        ReachabilityEngine::open_snapshot(&snapshot_dir, network.clone()).expect("open shadow");
    let candidates: Vec<SQuery> = [(0.0, 0.0), (900.0, -600.0), (-1200.0, 800.0)]
        .iter()
        .flat_map(|&(dx, dy)| {
            [0.25, 0.6].map(|prob| SQuery {
                location: center.offset_m(dx, dy),
                start_time_s: 9 * 3600,
                duration_s: 600,
                prob,
            })
        })
        .collect();
    let before: Vec<f64> = candidates
        .iter()
        .map(|q| {
            shadow
                .try_s_query(q, Algorithm::SqmbTbs)
                .expect("shadow before")
                .region
                .total_length_km
        })
        .collect();
    shadow.ingest(&live_day).expect("shadow ingest");
    let (alert_query, threshold_km) = candidates
        .iter()
        .zip(&before)
        .find_map(|(q, &len_before)| {
            let len_after = shadow
                .try_s_query(q, Algorithm::SqmbTbs)
                .expect("shadow after")
                .region
                .total_length_km;
            (len_after < len_before).then(|| {
                println!(
                    "alert candidate at prob {}: {len_before:.2} km today, {len_after:.2} km once the day lands",
                    q.prob
                );
                (*q, (len_before + len_after) / 2.0)
            })
        })
        .expect("one candidate region shrinks when the live day lands");
    drop(shadow);

    // --- Serving: open, attach the WAL, register the subscriptions -------
    let engine = Arc::new(
        ReachabilityEngine::open_snapshot(&snapshot_dir, network.clone()).expect("open snapshot"),
    );
    engine.attach_wal(&wal_path).expect("attach WAL");
    let manager = SubscriptionManager::spawn(Arc::clone(&engine), SubscribeConfig::default());
    let watch_id = manager
        .subscribe(watch, Algorithm::SqmbTbs, Trigger::AnyRegionChange)
        .expect("register watch");
    let alert_id = manager
        .subscribe(
            alert_query,
            Algorithm::SqmbTbs,
            Trigger::LengthBelowKm(threshold_km),
        )
        .expect("register alert");
    // Registration evaluates once and reports the baseline (old region
    // `None`, trigger never fires on the first answer).
    for event in manager.poll_events() {
        if let SubscriptionEvent::Update(e) = event {
            println!(
                "registered {}: {:.2} km baseline",
                e.id, e.new_region.total_length_km
            );
        }
    }

    // --- A live fleet-day arrives -----------------------------------------
    // The ingest observer hands the batch's (slot, segment) touch set to
    // the background worker; both subscriptions' footprints intersect it,
    // so both re-evaluate. `run_now()` makes the pass synchronous here so
    // the walkthrough can print right away.
    engine.ingest(&live_day).expect("ingest live day");
    manager.run_now();
    for event in manager.poll_events() {
        match event {
            SubscriptionEvent::Update(e) => {
                let old_km = e.old_region.map(|r| r.total_length_km).unwrap_or(0.0);
                println!(
                    "gen {}: {} moved {:.2} km -> {:.2} km",
                    e.generation, e.id, old_km, e.new_region.total_length_km
                );
                if e.id == alert_id {
                    assert!(e.trigger_fired, "the shadow probe promised a crossing");
                    println!(
                        "        << ALERT: crossed below the {threshold_km:.2} km threshold exactly on this batch"
                    );
                }
            }
            other => println!("event: {other:?}"),
        }
    }

    // --- A slot-disjoint batch costs nothing ------------------------------
    // Shift the same points to the evening under fresh trajectory ids and
    // an already-known date: the touch set shares no slot with the 09:00
    // footprints, so the pass evaluates nothing.
    let night: Vec<TrajPoint> = live_day
        .iter()
        .map(|p| TrajPoint {
            traj_id: p.traj_id + 1_000_000,
            date: p.date % base_days,
            segment: p.segment,
            enter_time_s: (p.enter_time_s + 8 * 3600).min(streach::traj::SECONDS_PER_DAY - 1),
        })
        .collect();
    let queries_before = manager.stats().engine_queries;
    engine.ingest(&night).expect("ingest night batch");
    manager.run_now();
    println!(
        "slot-disjoint night batch: {} re-evaluations, {} events",
        manager.stats().engine_queries - queries_before,
        manager.poll_events().len()
    );
    let pre_crash = manager
        .last_region(watch_id)
        .expect("watch still registered")
        .expect("watch evaluated");

    // --- Crash and recover -------------------------------------------------
    // Subscriptions are in-memory serving state; durability comes from the
    // snapshot + WAL underneath. Drop everything without checkpointing,
    // reopen (the WAL tail replays), re-register, and the first evaluation
    // lands exactly where the pre-crash stream left off.
    manager.shutdown();
    drop(engine);
    println!(
        "crash! reopening from {} + WAL tail",
        snapshot_dir.display()
    );
    let recovered = Arc::new(
        ReachabilityEngine::open_snapshot(&snapshot_dir, network.clone()).expect("reopen snapshot"),
    );
    recovered.attach_wal(&wal_path).expect("replay WAL tail");
    let manager = SubscriptionManager::spawn(Arc::clone(&recovered), SubscribeConfig::default());
    let watch_id = manager
        .subscribe(watch, Algorithm::SqmbTbs, Trigger::AnyRegionChange)
        .expect("re-register watch");
    let event = manager
        .next_event(Duration::from_secs(10))
        .expect("baseline event");
    let recovered_region = match event {
        SubscriptionEvent::Update(e) => e.new_region,
        other => panic!("unexpected event after re-register: {other:?}"),
    };
    assert_eq!(recovered_region.segments, pre_crash.segments);
    assert_eq!(
        recovered_region.total_length_km.to_bits(),
        pre_crash.total_length_km.to_bits()
    );
    println!(
        "re-registered {watch_id}: {:.2} km — bit-identical to the pre-crash region",
        recovered_region.total_length_km
    );

    manager.shutdown();
    let _ = std::fs::remove_dir_all(&snapshot_dir);
}
