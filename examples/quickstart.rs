//! Quickstart: build a city, simulate a fleet, build the indexes and answer
//! one single-location reachability query with both algorithms.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use streach::prelude::*;

fn main() {
    // 1. A synthetic metropolis (stands in for the Shenzhen road network).
    let city = SyntheticCity::generate(GeneratorConfig::medium());
    let center = city.central_point();
    let network = Arc::new(city.network);
    println!(
        "road network: {} intersections, {} directed segments, {:.0} km",
        network.num_nodes(),
        network.num_segments(),
        network.total_length_km()
    );

    // 2. A simulated taxi fleet (stands in for the 21,385-taxi GPS dataset).
    let fleet = FleetConfig {
        num_taxis: 60,
        num_days: 10,
        day_start_s: 6 * 3600,
        day_end_s: 22 * 3600,
        ..FleetConfig::default()
    };
    let dataset = TrajectoryDataset::simulate(&network, fleet);
    let stats = dataset.stats();
    println!(
        "trajectory dataset: {} taxis x {} days = {} trajectories, {} segment visits",
        stats.num_taxis, stats.num_days, stats.num_trajectories, stats.num_segment_visits
    );

    // 3. Build the ST-Index and Con-Index.
    let engine = EngineBuilder::new(network.clone(), &dataset).build();
    let st_stats = engine.st_index().stats();
    println!(
        "ST-Index: {} time lists, {} posting pages ({} KiB)",
        st_stats.num_time_lists,
        st_stats.posting_pages,
        st_stats.posting_bytes / 1024
    );

    // 4. A single-location reachability query: from the city centre at 11:00,
    //    within 10 minutes, with 20% probability.
    let query = SQuery {
        location: center,
        start_time_s: 11 * 3600,
        duration_s: 10 * 60,
        prob: 0.2,
    };
    engine.warm_con_index(query.start_time_s, query.duration_s);

    for (name, algo) in [
        ("exhaustive search (ES)", Algorithm::ExhaustiveSearch),
        ("SQMB + TBS", Algorithm::SqmbTbs),
    ] {
        let outcome = engine.s_query(&query, algo);
        println!(
            "{name:<24} -> {:>4} segments, {:>7.2} km reachable, {:>8.1} ms, {} segments verified, {} page reads",
            outcome.region.len(),
            outcome.region.total_length_km,
            outcome.stats.running_time_ms(),
            outcome.stats.segments_verified,
            outcome.stats.io.page_reads,
        );
    }

    // 5. Export the SQMB+TBS result as GeoJSON for inspection in any map viewer.
    let outcome = engine.s_query(&query, Algorithm::SqmbTbs);
    let geojson = region_to_geojson(&network, &outcome.region);
    let path = std::env::temp_dir().join("streach_quickstart_region.geojson");
    std::fs::write(&path, geojson).expect("write GeoJSON");
    println!("wrote {}", path.display());
}
