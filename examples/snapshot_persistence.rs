//! Snapshot persistence: build the indexes once, save them to disk, then
//! reopen the engine in a "new process" without the trajectory dataset.
//!
//! Run with:
//! ```text
//! cargo run --release --example snapshot_persistence
//! ```

use std::sync::Arc;
use std::time::Instant;

use streach::prelude::*;

fn main() {
    let snapshot_dir = std::env::temp_dir().join("streach-example-snapshot");
    let _ = std::fs::remove_dir_all(&snapshot_dir);

    // --- Process 1: offline index construction -------------------------
    let city = SyntheticCity::generate(GeneratorConfig::small());
    let center = city.central_point();
    let network = Arc::new(city.network);
    let dataset = TrajectoryDataset::simulate(
        &network,
        FleetConfig {
            num_taxis: 30,
            num_days: 6,
            day_start_s: 0,
            day_end_s: 86_400,
            ..FleetConfig::default()
        },
    );

    let t0 = Instant::now();
    let engine = EngineBuilder::new(network.clone(), &dataset)
        .save_snapshot(&snapshot_dir)
        .expect("save snapshot");
    println!(
        "built and persisted the engine in {:.2} s -> {}",
        t0.elapsed().as_secs_f64(),
        snapshot_dir.display()
    );

    let query = SQuery {
        location: center,
        start_time_s: 11 * 3600,
        duration_s: 600,
        prob: 0.25,
    };
    let reference = engine.s_query(&query, Algorithm::SqmbTbs);
    println!(
        "fresh engine:    {} reachable segments, {:.1} km",
        reference.region.len(),
        reference.region.total_length_km
    );
    drop(engine);
    drop(dataset); // the snapshot must not need the trajectories again

    // --- Process 2: cold start from the snapshot -----------------------
    let t1 = Instant::now();
    let reopened =
        ReachabilityEngine::open_snapshot(&snapshot_dir, network).expect("open snapshot");
    println!(
        "reopened the engine from disk in {:.3} s (no dataset required)",
        t1.elapsed().as_secs_f64()
    );

    reopened.st_index().io_stats().reset();
    let cold = reopened.s_query(&query, Algorithm::SqmbTbs);
    println!(
        "reopened engine: {} reachable segments, {:.1} km ({} real page reads)",
        cold.region.len(),
        cold.region.total_length_km,
        cold.stats.io.page_reads
    );
    assert_eq!(
        reference.region.segments, cold.region.segments,
        "snapshot answers must be bit-identical"
    );
    println!("results are bit-identical across the snapshot round trip");

    let _ = std::fs::remove_dir_all(&snapshot_dir);
}
