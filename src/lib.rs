//! # streach — spatio-temporal reachable region mining
//!
//! A from-scratch Rust reproduction of *"Mining Spatio-Temporal Reachable
//! Regions over Massive Trajectory Data"* (Ding, ICDE/WPI 2017).
//!
//! The system answers queries of the form *"which road segments can be
//! reached from location `S`, starting at time `T`, within duration `L`,
//! with probability at least `Prob` according to historical trajectories?"*
//! using two purpose-built indexes (the ST-Index and the Con-Index) and the
//! SQMB / TBS / MQMB query-processing algorithms.
//!
//! This crate is a façade: it re-exports the workspace crates so that
//! downstream users (and the bundled examples) only need one dependency.
//!
//! | Module | Contents |
//! |---|---|
//! | [`geo`] | geometry primitives (points, MBRs, polylines) |
//! | [`storage`] | page store, buffer pool, B+-tree, posting lists |
//! | [`spatial`] | R-tree and grid index |
//! | [`roadnet`] | road network, re-segmentation, synthetic city generator |
//! | [`traj`] | taxi-fleet simulator, map matching, trajectory datasets |
//! | [`core`] | ST-Index, Con-Index, ES / SQMB / TBS / MQMB, the engine |
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough.

#![warn(missing_docs)]

pub use streach_core as core;
pub use streach_geo as geo;
pub use streach_roadnet as roadnet;
pub use streach_spatial as spatial;
pub use streach_storage as storage;
pub use streach_traj as traj;

pub use streach_core::prelude;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        // Touch one item from every re-exported crate.
        let p = crate::geo::GeoPoint::new(114.0, 22.5);
        assert!(p.is_finite());
        let _ = crate::storage::PAGE_SIZE;
        let t: crate::spatial::RTree<u32> = crate::spatial::RTree::new();
        assert!(t.is_empty());
        let cfg = crate::roadnet::GeneratorConfig::small();
        assert_eq!(cfg.cols, 9);
        let fleet = crate::traj::FleetConfig::tiny();
        assert_eq!(fleet.num_days, 3);
        let idx = crate::core::IndexConfig::default();
        assert_eq!(idx.slot_s, 300);
    }
}
